//! Detection-surface invariants, from recorded-stream determinism to the
//! live request path: a fixture stream replays to byte-identical score
//! series on any thread count, the committed ROC artifact regenerates
//! exactly and clears the CI golden floor, probe traffic never feeds the
//! detector, and a live harvester is flagged, rate limited (or deceived)
//! and exported with properly escaped Prometheus labels.

use deepsplit_core::config::AttackConfig;
use deepsplit_core::httpc;
use deepsplit_core::store::MemoryModelStore;
use deepsplit_defense::eval::EvalConfig;
use deepsplit_defense::service::{AttackRequest, AttackResponse};
use deepsplit_netlist::benchmarks::Benchmark;
use deepsplit_serve::detect::{roc, Action, Countermeasure, DetectConfig, Detector, Observation};
use deepsplit_serve::{start, AttackServer, MetricsSnapshot, Request, RunningServer, ServeConfig};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Generous per-read timeout: `/attack` may train a model first.
const TIMEOUT: Duration = Duration::from_secs(300);

/// The recorded query stream: alice is honest, mallory harvests, carol
/// harvests behind cover traffic.
const FIXTURE: &str = include_str!("fixtures/detect_stream.jsonl");

fn fixture_stream() -> Vec<Observation> {
    FIXTURE
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("parse fixture observation"))
        .collect()
}

fn replay_config() -> DetectConfig {
    DetectConfig {
        enabled: true,
        ..DetectConfig::default()
    }
}

/// A deliberately tiny evaluation protocol so `/attack` trains in seconds.
fn tiny_eval() -> EvalConfig {
    EvalConfig {
        attack: AttackConfig {
            use_images: false,
            candidates: 8,
            epochs: 4,
            batch_size: 16,
            threads: 2,
            ..AttackConfig::fast()
        },
        scale: 0.4,
        train_benchmarks: vec![Benchmark::C880],
        recovery_rounds: 6,
        train_query_cap: 150,
        ..EvalConfig::fast()
    }
}

fn tiny_request(client: &str) -> AttackRequest {
    AttackRequest {
        eval: tiny_eval(),
        top_k: 3,
        client: Some(client.to_string()),
        ..AttackRequest::fast(Benchmark::C432)
    }
}

/// A server with the detector on: small windows and a hair trigger so a
/// live test flags a hammering client within a few hundred milliseconds.
fn detecting_server(countermeasure: Countermeasure) -> RunningServer {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        lru_capacity: 4,
        inference_threads: 1,
        detect: DetectConfig {
            enabled: true,
            window_us: 150_000,
            trigger_windows: 1,
            release_windows: 1_000,
            countermeasure,
            ..DetectConfig::default()
        },
    };
    start(&config, Arc::new(MemoryModelStore::new())).expect("bind ephemeral port")
}

fn metrics_of(server: &RunningServer) -> MetricsSnapshot {
    let r = httpc::get(&format!("{}/metrics", server.url()), TIMEOUT).expect("GET /metrics");
    assert_eq!(r.status, 200);
    serde_json::from_str(r.body_str().expect("metrics body")).expect("parse metrics")
}

#[test]
fn fixture_replays_byte_identically_and_flags_the_harvester() {
    let stream = fixture_stream();
    assert!(stream.len() > 200, "fixture must be non-trivial");
    let config = replay_config();

    // Two serial replays must serialise to the same bytes.
    let series_a = deepsplit_serve::detect::replay(&config, &stream);
    let series_b = deepsplit_serve::detect::replay(&config, &stream);
    let json_a = serde_json::to_string_pretty(&series_a).expect("serialise series");
    let json_b = serde_json::to_string_pretty(&series_b).expect("serialise series");
    assert_eq!(json_a, json_b, "replay must be byte-identical across runs");

    // Verdicts: the harvester is flagged, the honest client is not.
    let detector = Detector::new(config.clone());
    for obs in &stream {
        let d = detector.admit(&obs.client, obs.tick_us, obs.fingerprint);
        if d.action != Action::RateLimit {
            detector.enrich(&obs.client, &obs.candidates, &obs.sinks);
        }
    }
    let snap = detector.snapshot();
    assert_eq!(snap.observed_queries, stream.len());
    assert_eq!(snap.clients_tracked, 3);
    let flagged: Vec<&str> = snap.flagged.iter().map(|f| f.client.as_str()).collect();
    assert!(flagged.contains(&"mallory"), "flagged: {flagged:?}");
    assert!(!flagged.contains(&"alice"), "flagged: {flagged:?}");

    // Thread-count invariance: one shared detector, each client's stream
    // driven in order from its own thread; every client's end-of-stream
    // window must score identically to the serial replay's.
    let threaded = Arc::new(Detector::new(config));
    let clients = ["alice", "carol", "mallory"];
    let handles: Vec<_> = clients
        .iter()
        .map(|name| {
            let detector = Arc::clone(&threaded);
            let own: Vec<Observation> = stream
                .iter()
                .filter(|o| o.client == *name)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                for obs in &own {
                    let d = detector.admit(&obs.client, obs.tick_us, obs.fingerprint);
                    if d.action != Action::RateLimit {
                        detector.enrich(&obs.client, &obs.candidates, &obs.sinks);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let tails: BTreeMap<String, _> = threaded.flush().into_iter().collect();
    for (client, series) in &series_a {
        let serial_tail = series.last().expect("non-empty serial series");
        assert_eq!(
            tails.get(client),
            Some(serial_tail),
            "client {client} scored differently under threads"
        );
    }
}

#[test]
fn roc_artifact_regenerates_exactly_and_clears_the_golden_floor() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/detect-golden.json");
    let golden_raw = std::fs::read_to_string(golden_path).expect("read ci/detect-golden.json");
    let golden: serde::Value = serde_json::from_str(&golden_raw).expect("parse golden");
    let field = |name: &str| -> f64 {
        golden
            .as_object()
            .expect("golden must be an object")
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or_else(|| panic!("golden field {name}"))
    };

    let report = roc::run(
        field("requests") as usize,
        field("window_ms") as u64 * 1_000,
        field("seed") as u64,
    );
    assert!(
        report.auc_harvest_vs_benign >= field("auc_harvest_vs_benign_floor"),
        "harvest AUC {} fell below the golden floor",
        report.auc_harvest_vs_benign
    );
    assert!(
        report.auc_stealthy_vs_benign >= field("auc_stealthy_vs_benign_floor"),
        "stealthy AUC {} fell below the golden floor",
        report.auc_stealthy_vs_benign
    );

    // The committed artifact must be exactly what regeneration produces —
    // the ROC path is deterministic, so any drift is a real change.
    let artifact_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detect.json");
    let committed: roc::RocReport = serde_json::from_str(
        &std::fs::read_to_string(artifact_path).expect("read BENCH_detect.json"),
    )
    .expect("parse BENCH_detect.json");
    assert_eq!(
        committed, report,
        "BENCH_detect.json is stale — regenerate with `attack_server --detect-roc --json BENCH_detect.json`"
    );
}

#[test]
fn probe_traffic_never_feeds_the_detector() {
    let server = detecting_server(Countermeasure::RateLimit);
    let base = server.url();
    for _ in 0..20 {
        let r = httpc::get(&format!("{base}/healthz"), TIMEOUT).expect("GET /healthz");
        assert_eq!(r.status, 200);
    }
    for _ in 0..5 {
        let r = httpc::get(&format!("{base}/metrics"), TIMEOUT).expect("GET /metrics");
        assert_eq!(r.status, 200);
    }
    let r = httpc::get(&format!("{base}/no-such-route"), TIMEOUT).expect("GET 404");
    assert_eq!(r.status, 404);

    let m = metrics_of(&server);
    assert!(m.detection.enabled);
    assert_eq!(
        m.detection.observed_queries, 0,
        "probes and routing errors must never enter detector windows"
    );
    assert_eq!(m.detection.clients_tracked, 0);
    assert_eq!(m.detection.windows_scored, 0);

    let r = httpc::get(&format!("{base}/metrics?format=prometheus"), TIMEOUT).expect("prom");
    let body = r.body_str().expect("prometheus body");
    assert!(body.contains("deepsplit_detection_enabled 1\n"), "{body}");
    assert!(body.contains("deepsplit_detection_observed_total 0\n"));
    assert!(body.contains("deepsplit_up 1\n"));
    server.shutdown();
}

#[test]
fn live_harvester_is_flagged_rate_limited_and_labelled() {
    let server = detecting_server(Countermeasure::RateLimit);
    let base = server.url();
    // A hostile client id: printable, but quote and backslash must survive
    // sanitisation and come out escaped in the Prometheus exposition.
    let mallory = "mal\"lory\\";
    let spec = serde_json::to_string(&tiny_request(mallory)).expect("serialise spec");

    // Hammer until the detector pushes back. The first request trains the
    // model (seconds, its own quiet window); once the LRU is warm each lap
    // is milliseconds, so hot windows accumulate fast.
    let mut first_429 = None;
    for i in 0..300 {
        let r = httpc::post(&format!("{base}/attack"), spec.as_bytes(), TIMEOUT).expect("POST");
        match r.status {
            200 => {}
            429 => {
                first_429 = Some(i);
                break;
            }
            other => panic!("unexpected HTTP {other}"),
        }
    }
    let first_429 = first_429.expect("a hammering client must get rate limited");
    assert!(first_429 > 0, "the very first request cannot be flagged");

    // An honest client is untouched.
    let alice = serde_json::to_string(&tiny_request("alice")).expect("serialise spec");
    let r = httpc::post(&format!("{base}/attack"), alice.as_bytes(), TIMEOUT).expect("POST");
    assert_eq!(r.status, 200, "honest traffic must still be served");

    let m = metrics_of(&server);
    assert!(m.detection.enabled);
    assert_eq!(m.detection.flagged_clients, 1);
    assert_eq!(
        m.detection.flagged.first().map(|f| f.client.as_str()),
        Some(mallory)
    );
    assert!(m.detection.rate_limited > 0);
    assert!(m.detection.flags_raised >= 1);
    assert!(m.detection.observed_queries >= first_429 + 2);
    assert!(m.uptime_seconds > 0.0);

    let r = httpc::get(&format!("{base}/metrics?format=prometheus"), TIMEOUT).expect("prom");
    let body = r.body_str().expect("prometheus body");
    assert!(
        body.contains("deepsplit_detection_score{client=\"mal\\\"lory\\\\\"}"),
        "hostile client id must be escaped in labels:\n{body}"
    );
    assert!(body.contains("deepsplit_detection_flagged_clients 1\n"));
    // The raw quote must never open a label injection: every exposition
    // line still parses as HELP/TYPE/series.
    for line in body.lines() {
        let valid = line.starts_with("# HELP ")
            || line.starts_with("# TYPE ")
            || line
                .rsplit_once(' ')
                .map(|(series, value)| !series.is_empty() && value.parse::<f64>().is_ok())
                .unwrap_or(false);
        assert!(valid, "malformed exposition line: {line:?}");
    }
    server.shutdown();
}

#[test]
fn deception_is_invisible_stable_and_collapses_confidence() {
    // In-process (no sockets): drive AttackServer::handle directly.
    let config = ServeConfig {
        addr: String::new(),
        threads: 1,
        lru_capacity: 4,
        inference_threads: 1,
        detect: DetectConfig {
            enabled: true,
            window_us: 120_000,
            trigger_windows: 1,
            release_windows: 1_000,
            countermeasure: Countermeasure::Deceive,
            ..DetectConfig::default()
        },
    };
    let server = AttackServer::new(&config, Arc::new(MemoryModelStore::new()));
    let spec = serde_json::to_string(&tiny_request("eve")).expect("serialise spec");
    let post = || {
        let response = server.handle(&Request {
            method: "POST".to_string(),
            path: "/attack".to_string(),
            body: spec.clone().into_bytes(),
            peer: None,
        });
        assert_eq!(response.status, 200, "deception must never refuse");
        String::from_utf8(response.body).expect("utf-8 response")
    };

    let honest = post();
    let honest_response: AttackResponse = serde_json::from_str(&honest).expect("parse honest");
    // Hammer until the telemetry says a deceptive response was served
    // (bodies cannot be compared directly: `inference_ms` varies per run).
    let mut deceived = None;
    for _ in 0..400 {
        let body = post();
        if server.metrics_snapshot().detection.deceived > 0 {
            deceived = Some(body);
            break;
        }
    }
    let deceived = deceived.expect("a hammering client must eventually be deceived");
    let deceived_response: AttackResponse =
        serde_json::from_str(&deceived).expect("deceived response must keep the wire schema");

    // Nothing marks the response as deceived.
    assert!(!deceived.contains("deceive"), "deception must be invisible");
    assert_eq!(deceived_response.fingerprint, honest_response.fingerprint);
    assert_eq!(
        deceived_response.rankings.len(),
        honest_response.rankings.len()
    );
    // Same candidates per sink (as sets) — only order and confidence move.
    for (d, h) in deceived_response
        .rankings
        .iter()
        .zip(&honest_response.rankings)
    {
        assert_eq!(d.sink, h.sink);
        let mut ds: Vec<u32> = d.candidates.iter().map(|c| c.source).collect();
        let mut hs: Vec<u32> = h.candidates.iter().map(|c| c.source).collect();
        ds.sort_unstable();
        hs.sort_unstable();
        assert_eq!(ds, hs, "sink {}", d.sink);
        // Confidences are flattened: the top pick is never better than the
        // near-uniform 2/(n+1) profile allows.
        if let Some(top) = d.candidates.first() {
            let n = d.candidates.len() as f64;
            assert!(
                top.confidence <= 2.0 / (n + 1.0) + 1e-9,
                "sink {} top confidence {} not collapsed",
                d.sink,
                top.confidence
            );
        }
    }
    // The deceptive rankings really differ from the honest ones…
    assert_ne!(
        deceived_response.rankings, honest_response.rankings,
        "deception must actually move the rankings"
    );
    // …and they are deterministic: the flagged client replaying the same
    // request gets the same rankings and CCRs — probing for deception by
    // repetition reveals nothing (timing fields aside).
    let again: AttackResponse = serde_json::from_str(&post()).expect("parse replay");
    assert_eq!(
        again.rankings, deceived_response.rankings,
        "deception must be stable per (client, spec)"
    );
    assert_eq!(again.dl_ccr, deceived_response.dl_ccr);
    assert_eq!(again.expected_ccr, deceived_response.expected_ccr);

    // Telemetry sees it even though the client cannot.
    let snap = server.metrics_snapshot();
    assert!(snap.detection.deceived > 0);
    assert_eq!(snap.detection.flagged_clients, 1);
    assert_eq!(snap.errors, 0, "deception serves 200s, not errors");
}
