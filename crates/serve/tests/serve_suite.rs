//! Service-level invariants, each against an in-process server on an
//! ephemeral port: the remote backend honours the full [`ModelStore`]
//! conformance contract over real HTTP, the blob API round-trips exact
//! bytes, `POST /attack` serves ranked matches whose top-1 reproduces the
//! library attack, repeat requests hit the cache chain, and `/metrics`
//! accounts for all of it.

use deepsplit_core::config::AttackConfig;
use deepsplit_core::httpc;
use deepsplit_core::store::{conformance, MemoryModelStore, ModelStore, RemoteModelStore};
use deepsplit_defense::eval::EvalConfig;
use deepsplit_defense::service::{AttackRequest, AttackResponse};
use deepsplit_netlist::benchmarks::Benchmark;
use deepsplit_serve::{start, MetricsSnapshot, RunningServer, ServeConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Generous per-read timeout: `/attack` may train a model first.
const TIMEOUT: Duration = Duration::from_secs(300);

fn test_server() -> RunningServer {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        lru_capacity: 4,
        inference_threads: 1,
        ..ServeConfig::default()
    };
    start(&config, Arc::new(MemoryModelStore::new())).expect("bind ephemeral port")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deepsplit-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deliberately tiny evaluation protocol so `/attack` trains in seconds.
fn tiny_eval() -> EvalConfig {
    EvalConfig {
        attack: AttackConfig {
            use_images: false,
            candidates: 8,
            epochs: 4,
            batch_size: 16,
            threads: 2,
            ..AttackConfig::fast()
        },
        scale: 0.4,
        train_benchmarks: vec![Benchmark::C880],
        recovery_rounds: 6,
        train_query_cap: 150,
        ..EvalConfig::fast()
    }
}

fn tiny_request() -> AttackRequest {
    AttackRequest {
        eval: tiny_eval(),
        top_k: 3,
        ..AttackRequest::fast(Benchmark::C432)
    }
}

fn metrics_of(server: &RunningServer) -> MetricsSnapshot {
    let r = httpc::get(&format!("{}/metrics", server.url()), TIMEOUT).expect("GET /metrics");
    assert_eq!(r.status, 200);
    serde_json::from_str(r.body_str().expect("metrics body")).expect("parse metrics")
}

#[test]
fn remote_store_passes_conformance_over_http() {
    // Without a local cache: every operation crosses the wire.
    let server = test_server();
    let store = RemoteModelStore::open(server.url(), None).expect("connect");
    conformance::check(&store);
    let snapshot = server.state().metrics_snapshot();
    assert!(snapshot.model_gets >= 6, "loads must hit the blob API");
    assert_eq!(snapshot.model_puts, 4, "saves must hit the blob API");
    server.shutdown();

    // With a local write-through cache (fresh server, fresh keyspace): the
    // same contract holds when loads can short-circuit to disk.
    let server = test_server();
    let dir = tempdir("write-through");
    let store = RemoteModelStore::open(server.url(), Some(dir.clone())).expect("connect");
    conformance::check(&store);
    server.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn write_through_cache_answers_without_the_server() {
    let server = test_server();
    let dir = tempdir("offline");
    let store = RemoteModelStore::open(server.url(), Some(dir.clone())).expect("connect");
    let saved = conformance::model(5);
    store.save(&conformance::key(5), &saved);
    server.shutdown();

    // The server is gone; the write-through copy still serves the load.
    let back = store
        .load(&conformance::key(5))
        .expect("local write-through copy must satisfy the load");
    assert_eq!(conformance::encoding(&back), conformance::encoding(&saved));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn blob_api_round_trips_exact_bytes() {
    let server = test_server();
    let base = server.url();
    let key = conformance::key(11);
    let json = conformance::encoding(&conformance::model(11));

    let url = format!("{base}/models/{}", key.to_hex());
    assert_eq!(
        httpc::get(&url, TIMEOUT).expect("GET").status,
        404,
        "an absent blob is 404"
    );
    let put = httpc::put(&url, json.as_bytes(), TIMEOUT).expect("PUT");
    assert_eq!(put.status, 204);
    let got = httpc::get(&url, TIMEOUT).expect("GET");
    assert_eq!(got.status, 200);
    assert_eq!(
        got.body_str().expect("blob body"),
        json,
        "the blob API must return byte-identical JSON"
    );

    // Garbage uploads are refused, not stored.
    let bad = httpc::put(
        &format!("{base}/models/{}", conformance::key(12).to_hex()),
        b"{nope",
        TIMEOUT,
    )
    .expect("PUT garbage");
    assert_eq!(bad.status, 400);
    server.shutdown();
}

#[test]
fn attack_endpoint_serves_ranked_matches_and_caches_the_model() {
    let server = test_server();
    let url = format!("{}/attack", server.url());
    let spec = tiny_request();
    let body = serde_json::to_string(&spec).expect("serialise request");

    // Cold: the server must train (memory store, nothing to load).
    let r = httpc::post(&url, body.as_bytes(), TIMEOUT).expect("POST /attack");
    assert_eq!(r.status, 200, "body: {}", r.body_str().unwrap_or("?"));
    let cold: AttackResponse =
        serde_json::from_str(r.body_str().expect("response body")).expect("parse response");
    assert_eq!(cold.benchmark, "c432");
    assert_eq!(cold.split_layer, 3);
    assert!(!cold.model_cached, "cold request must train");
    assert!(cold.trained_epochs > 0);
    assert_eq!(cold.fingerprint, spec.fingerprint().to_hex());
    assert!(!cold.rankings.is_empty());
    for sink in &cold.rankings {
        assert!(sink.sink_pins > 0);
        assert!(!sink.candidates.is_empty() && sink.candidates.len() <= 3);
        let mut last = f64::INFINITY;
        for c in &sink.candidates {
            assert!((0.0..=1.0).contains(&c.confidence));
            assert!(c.confidence <= last, "rankings must be sorted");
            last = c.confidence;
        }
    }
    for v in [
        cold.dl_ccr,
        cold.expected_ccr,
        cold.chance_ccr,
        cold.proximity_ccr,
    ] {
        assert!((0.0..=1.0).contains(&v), "CCR-style score {v} out of range");
    }
    assert!(
        cold.dl_ccr > 2.0 * cold.chance_ccr,
        "the trained attack must beat chance on an undefended layout"
    );
    assert!(cold.inference_ms > 0.0);
    assert!(cold.flow.is_none(), "flow baseline only runs when asked");

    // Warm: same spec resolves from the LRU — zero epochs, identical verdict.
    let r = httpc::post(&url, body.as_bytes(), TIMEOUT).expect("POST /attack warm");
    assert_eq!(r.status, 200);
    let warm: AttackResponse =
        serde_json::from_str(r.body_str().expect("response body")).expect("parse response");
    assert!(warm.model_cached, "second request must hit the cache");
    assert_eq!(warm.trained_epochs, 0);
    assert_eq!(warm.rankings, cold.rankings, "cached model, identical bits");
    assert_eq!(warm.dl_ccr, cold.dl_ccr);

    // The flow baseline rides along when requested.
    let mut with_flow = spec.clone();
    with_flow.include_flow = true;
    let body = serde_json::to_string(&with_flow).expect("serialise request");
    let r = httpc::post(&url, body.as_bytes(), TIMEOUT).expect("POST /attack flow");
    assert_eq!(r.status, 200);
    let flow_response: AttackResponse =
        serde_json::from_str(r.body_str().expect("response body")).expect("parse response");
    assert!(
        flow_response.flow.is_some(),
        "flow verdict must be included"
    );

    // Metrics account for everything: three attacks, one training run, LRU
    // hits on the warm requests.
    let m = metrics_of(&server);
    assert_eq!(m.attacks, 3);
    assert_eq!(m.models_trained, 1, "one corpus, one training run");
    assert_eq!(m.epochs_trained, cold.trained_epochs);
    assert!(m.lru.hits >= 2, "warm requests must resolve from the LRU");
    assert_eq!(
        m.store.misses, 1,
        "only the cold request consulted the store"
    );
    assert_eq!(m.store.saves, 1, "the trained model was published");
    // The /metrics request snapshots before recording itself, so exactly
    // the three attack requests are guaranteed to have landed.
    assert!(m.latency.samples >= 3);
    assert!(m.latency.p99_ms >= m.latency.p50_ms);
    assert!(m.latency.p999_ms >= m.latency.p99_ms);
    assert!(m.endpoints.attack.samples >= 3, "per-endpoint breakdown");
    assert!(
        cold.resolve_ms > 0.0,
        "cold resolve covers the training run"
    );
    server.shutdown();
}

#[test]
fn metrics_separate_probe_traffic_and_speak_prometheus() {
    let server = test_server();
    let base = server.url();

    // Probe traffic only: health checks and metrics reads.
    for _ in 0..5 {
        assert_eq!(
            httpc::get(&format!("{base}/healthz"), TIMEOUT)
                .expect("healthz")
                .status,
            200
        );
    }
    let m = metrics_of(&server);
    assert_eq!(
        m.latency.samples, 0,
        "probes must not enter the real-traffic latency headline"
    );
    assert!(
        m.endpoints.other.samples >= 5,
        "…but must be visible in the Other class"
    );

    // One real request (a store miss) lands in the headline.
    let url = format!("{base}/models/{}", conformance::key(21).to_hex());
    assert_eq!(httpc::get(&url, TIMEOUT).expect("GET model").status, 404);
    let m = metrics_of(&server);
    assert_eq!(m.latency.samples, 1);
    assert_eq!(m.endpoints.model_get.samples, 1);

    // The same endpoint serves Prometheus text exposition on request.
    let prom = httpc::get(&format!("{base}/metrics?format=prometheus"), TIMEOUT)
        .expect("GET prometheus metrics");
    assert_eq!(prom.status, 200);
    let body = prom.body_str().expect("prometheus body");
    for series in [
        "# TYPE deepsplit_requests_total counter",
        "# TYPE deepsplit_request_latency_attack_seconds histogram",
        "deepsplit_request_latency_other_seconds_bucket{le=\"+Inf\"}",
        "deepsplit_request_latency_model_get_seconds_count 1",
        "deepsplit_errors_total 0",
    ] {
        assert!(body.contains(series), "missing `{series}` in:\n{body}");
    }
    // JSON stays the default representation.
    let json = httpc::get(&format!("{base}/metrics"), TIMEOUT).expect("GET metrics");
    assert!(json
        .body_str()
        .expect("json body")
        .trim_start()
        .starts_with('{'));
    server.shutdown();
}

#[test]
fn attack_endpoint_refuses_bad_specs() {
    let server = test_server();
    let url = format!("{}/attack", server.url());

    let r = httpc::post(&url, b"{not json", TIMEOUT).expect("POST garbage");
    assert_eq!(r.status, 400);

    let mut bad = tiny_request();
    bad.benchmark = "c999".to_string();
    let body = serde_json::to_string(&bad).expect("serialise request");
    let r = httpc::post(&url, body.as_bytes(), TIMEOUT).expect("POST unknown benchmark");
    assert_eq!(r.status, 400);
    assert!(
        r.body_str().expect("body").contains("unknown benchmark"),
        "error must say what was wrong"
    );

    let m = metrics_of(&server);
    assert_eq!(m.errors, 2);
    assert_eq!(
        m.models_trained, 0,
        "invalid specs must never reach training"
    );
    server.shutdown();
}

/// Writes raw bytes to the server and returns whatever it answers — for
/// requests malformed enough that no HTTP client will produce them.
fn raw_roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    stream.write_all(payload).expect("send payload");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn malformed_requests_answer_400_and_the_worker_survives() {
    let server = test_server();
    let addr = server.addr();

    // No method/path/version at all.
    let r = raw_roundtrip(addr, b"GARBAGE\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400"), "got: {r:.60}");

    // A Content-Length that is not a number.
    let r = raw_roundtrip(
        addr,
        b"POST /attack HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(r.starts_with("HTTP/1.1 400"), "got: {r:.60}");

    // A body larger than the server will ever buffer.
    let r = raw_roundtrip(
        addr,
        b"POST /attack HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
    );
    assert!(r.starts_with("HTTP/1.1 400"), "got: {r:.60}");

    // The workers must have survived all of it.
    let health = httpc::get(&format!("{}/healthz", server.url()), TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200, "bad requests must not kill workers");
    server.shutdown();
}

#[test]
fn oversized_header_answers_400_not_a_hung_worker() {
    let server = test_server();
    // A single 128 KiB header blows the 64 KiB head limit.
    let mut payload = b"GET /healthz HTTP/1.1\r\nX-Filler: ".to_vec();
    payload.extend(std::iter::repeat_n(b'a', 128 * 1024));
    payload.extend_from_slice(b"\r\n\r\n");
    let r = raw_roundtrip(server.addr(), &payload);
    assert!(r.starts_with("HTTP/1.1 400"), "got: {r:.60}");

    let health = httpc::get(&format!("{}/healthz", server.url()), TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn out_of_range_eval_scale_is_rejected_at_the_boundary() {
    let server = test_server();
    let url = format!("{}/attack", server.url());
    let mut bad = tiny_request();
    bad.eval.scale = 0.0;
    let body = serde_json::to_string(&bad).expect("serialise request");
    let r = httpc::post(&url, body.as_bytes(), TIMEOUT).expect("POST zero scale");
    assert_eq!(r.status, 400);
    assert!(
        r.body_str().expect("body").contains("scale"),
        "error must name the offending field"
    );
    assert_eq!(
        metrics_of(&server).models_trained,
        0,
        "a degenerate scale must never reach layout or training"
    );
    server.shutdown();
}
