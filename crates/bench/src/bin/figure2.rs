//! Regenerates the paper's **Figure 2**: the three image scales (a) and the
//! layer-bit encoding (b) for one concrete virtual pin, rendered as ASCII.

use deepsplit_core::config::AttackConfig;
use deepsplit_core::image_features::ImageExtractor;
use deepsplit_layout::design::{Design, ImplementConfig};
use deepsplit_layout::geom::Layer;
use deepsplit_layout::split::split_design;
use deepsplit_netlist::benchmarks::{generate_with, Benchmark};
use deepsplit_netlist::library::CellLibrary;

fn main() {
    let lib = CellLibrary::nangate45();
    let nl = generate_with(Benchmark::C432, 1.0, 7, &lib);
    let design = Design::implement(nl, lib, &ImplementConfig::default());
    let view = split_design(&design, Layer(3));

    let config = AttackConfig {
        image_px: 33,
        image_scales_um: vec![0.05, 0.1, 0.2],
        ..AttackConfig::paper()
    };
    let extractor = ImageExtractor::new(&view, &config);

    // Pick the sink fragment with the most of its own split-layer wiring so
    // the picture is interesting.
    let sink = *view
        .sinks
        .iter()
        .max_by_key(|&&s| view.fragment(s).segments.len())
        .expect("some sink fragment");
    let vp = view.fragment(sink).virtual_pins[0];
    let img = extractor.render(sink, vp);
    let m = view.split_layer.0 as usize;
    let px = config.image_px;

    println!(
        "Figure 2: image features of sink fragment {} @ VP ({:.2}, {:.2}) um",
        sink.0,
        vp.x as f64 / 1000.0,
        vp.y as f64 / 1000.0
    );
    for (si, scale) in config.image_scales_um.iter().enumerate() {
        println!(
            "\n--- scale {si}: {scale} um/pixel (window {:.2} um) ---",
            scale * px as f64
        );
        // Collapse the 2m planes of this scale into one glyph per pixel:
        // '#' own wiring, '+' other wiring, '.' empty (higher layers win).
        for y in (0..px).rev() {
            let mut line = String::with_capacity(px);
            for x in 0..px {
                let mut glyph = '.';
                for l in 0..m {
                    let other = img.data()[(((si * 2 * m) + l) * px + y) * px + x];
                    let own = img.data()[(((si * 2 * m) + m + l) * px + y) * px + x];
                    if own > 0.0 {
                        glyph = '#';
                    } else if other > 0.0 && glyph == '.' {
                        glyph = '+';
                    }
                }
                line.push(glyph);
            }
            println!("{line}");
        }
    }

    // Fig. 2(b): bit encoding of the centre pixel.
    println!("\nFigure 2(b): layer bits of the centre pixel (scale 0)");
    println!("bit order (MSB..LSB): own M{m}..own M1 | other M{m}..other M1");
    let mut bits = String::new();
    for l in (0..m).rev() {
        let own = img.data()[((m + l) * px + px / 2) * px + px / 2];
        bits.push(if own > 0.0 { '1' } else { '0' });
    }
    for l in (0..m).rev() {
        let other = img.data()[((l) * px + px / 2) * px + px / 2];
        bits.push(if other > 0.0 { '1' } else { '0' });
    }
    println!("centre pixel = '{bits}'");
}
