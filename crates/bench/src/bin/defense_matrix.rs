//! The attack-vs-defense matrix: every defense at every strength against all
//! three attackers, with PPA overhead — executed by the sweep engine with a
//! content-addressed model store, shard-aware scheduling and resumable
//! per-cell artifacts.
//!
//! ```text
//! cargo run --release --bin defense_matrix                    # fast default
//! cargo run --release --bin defense_matrix -- --designs c432,c880
//! cargo run --release --bin defense_matrix -- --strengths 0.25,0.5,1.0
//! cargo run --release --bin defense_matrix -- --layers 1,3 --images
//! cargo run --release --bin defense_matrix -- --json matrix.json
//!
//! # Repeated sweeps skip training via the on-disk model store:
//! cargo run --release --bin defense_matrix -- --cache-dir .model-store
//!
//! # Split the matrix across two machines, then reassemble:
//! cargo run --release --bin defense_matrix -- --shard 0/2 --artifacts runs/m
//! cargo run --release --bin defense_matrix -- --shard 1/2 --artifacts runs/m
//! cargo run --release --bin defense_matrix -- --merge --artifacts runs/m --json matrix.json
//!
//! # Interrupted? Re-run with --resume to keep completed cells (the model
//! # store is required, so pending cells reload instead of re-training):
//! cargo run --release --bin defense_matrix -- --artifacts runs/m --cache-dir .model-store --resume
//!
//! # Share one cache across machines via an attack_server (--cache-dir then
//! # acts as a local write-through cache in front of the remote store):
//! cargo run --release --bin defense_matrix -- --store-url http://10.0.0.5:8077
//!
//! # Observability: per-cell phase timings and a chrome://tracing file.
//! # Neither changes any gated output — the --json report of a traced run
//! # is byte-identical to an untraced one.
//! cargo run --release --bin defense_matrix -- --timings --trace sweep-trace.json
//! ```

use deepsplit_bench::cli::{list_arg, value_arg};
use deepsplit_core::store::{DiskModelStore, MemoryModelStore, ModelStore, RemoteModelStore};
use deepsplit_defense::sweep::{self, SweepConfig};
use deepsplit_defense::DefenseKind;
use deepsplit_engine::{
    merge_artifacts, protocol_fingerprint, EngineConfig, MatrixReport, MatrixRun,
};
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::Benchmark;
use std::path::PathBuf;

fn parse_shard(s: &str) -> (usize, usize) {
    let (index, count) = s
        .split_once('/')
        .expect("--shard takes INDEX/COUNT, e.g. 0/2");
    (
        index.parse().expect("bad shard index"),
        count.parse().expect("bad shard count"),
    )
}

fn sweep_config(args: &[String]) -> SweepConfig {
    let mut config = SweepConfig::fast();
    if let Some(designs) = list_arg(args, "--designs") {
        config.benchmarks = designs
            .iter()
            .filter_map(|n| Benchmark::from_name(n))
            .collect();
        assert!(
            !config.benchmarks.is_empty(),
            "--designs matched no benchmark"
        );
    }
    if let Some(strengths) = list_arg(args, "--strengths") {
        config.strengths = strengths
            .iter()
            .map(|s| s.parse().expect("bad strength"))
            .collect();
    }
    if let Some(layers) = list_arg(args, "--layers") {
        config.split_layers = layers
            .iter()
            .map(|l| Layer(l.parse().expect("bad layer")))
            .collect();
    }
    if let Some(kinds) = list_arg(args, "--defenses") {
        config.kinds = kinds
            .iter()
            .map(|k| DefenseKind::from_name(k).expect("unknown defense"))
            .collect();
    }
    if args.iter().any(|a| a == "--images") {
        config.eval.attack.use_images = true;
    }
    if let Some(threads) = value_arg(args, "--threads") {
        config.threads = threads.parse().expect("bad thread count");
    }
    if let Some(shard) = value_arg(args, "--shard") {
        config.shard = parse_shard(&shard);
    }
    config
}

/// Renders the table, per-defense headlines and Pareto fronts of a full
/// matrix, and writes the `--json` regression artifact when asked.
fn report_full(results: Vec<deepsplit_defense::eval::EvalOutcome>, json_path: Option<String>) {
    print!("{}", sweep::render_matrix(&results));

    // Headline: the best protection factor each defense kind achieved.
    println!();
    for kind in DefenseKind::all()
        .into_iter()
        .filter(|&k| k != DefenseKind::None)
    {
        let best = results
            .iter()
            .filter(|r| r.defense.kind == kind)
            .map(|r| (sweep::protection_factor(&results, r), r))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((factor, r)) = best {
            println!(
                "best {:>10}: {:>5.1}× DL-CCR reduction on {} (M{}, strength {:.2}, {:+.1} % wirelength)",
                kind.name(),
                factor,
                r.benchmark,
                r.split_layer,
                r.defense.strength,
                r.defense.wirelength_overhead_pct(),
            );
        }
    }

    let report = MatrixReport::new(results);
    println!();
    for group in &report.pareto.groups {
        println!(
            "Pareto front {} / M{} (cost% → DL CCR%):",
            group.benchmark, group.split_layer
        );
        for p in &group.points {
            println!(
                "  {:>9} @ {:.2}: {:+7.2} % cost → {:6.2} % CCR",
                p.defense,
                p.strength,
                p.cost_overhead_pct,
                100.0 * p.dl_ccr,
            );
        }
    }

    if let Some(path) = json_path {
        let json = report.to_json().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        std::fs::write(&path, json).expect("write matrix json");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = sweep_config(&args);
    let artifacts_dir = value_arg(&args, "--artifacts").map(PathBuf::from);
    let json_path = value_arg(&args, "--json");
    let trace_path = value_arg(&args, "--trace");
    if trace_path.is_some() {
        deepsplit_obs::install(deepsplit_obs::DEFAULT_TRACE_CAPACITY);
    }
    let record_timings = args.iter().any(|a| a == "--timings");

    // Misconfigurations that would discard hours of sweeping are refused
    // before any work happens, not after.
    let merge = args.iter().any(|a| a == "--merge");
    assert!(
        config.shard.1 == 1 || json_path.is_none() || merge,
        "--json needs the full matrix: run every shard into --artifacts, then --merge"
    );
    assert!(
        config.shard.1 == 1 || artifacts_dir.is_some(),
        "--shard requires --artifacts DIR: without published cells the shards can never be merged"
    );
    let resume = args.iter().any(|a| a == "--resume");
    assert!(
        !resume || artifacts_dir.is_some(),
        "--resume requires --artifacts DIR (the directory holding the completed cells)"
    );
    assert!(
        !resume
            || value_arg(&args, "--cache-dir").is_some()
            || value_arg(&args, "--store-url").is_some(),
        "--resume requires --cache-dir DIR or --store-url URL: resumed artifacts skip \
         evaluation, but without a model store every still-pending cell silently re-trains \
         its models from scratch"
    );

    // Merge mode: reassemble shard artifacts, no evaluation. The protocol
    // fingerprint is derived from the same flags, so merging with a config
    // different from the shards' refuses instead of mislabeling results.
    if merge {
        let dir = artifacts_dir.expect("--merge requires --artifacts DIR");
        let results = match merge_artifacts(&dir, &config.cells(), protocol_fingerprint(&config)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        };
        report_full(results, json_path);
        return;
    }

    let engine_config = EngineConfig {
        sweep: config,
        artifacts_dir,
        resume,
        record_timings,
    };
    let config = &engine_config.sweep;

    let cells = config.cells().len();
    let (shard_index, shard_count) = config.shard;
    // Matrix-shape breakdown from the deduplicated cell list (the raw CLI
    // lists may repeat kinds or strengths), so the formula matches `cells`.
    let mut kinds: Vec<&str> = Vec::new();
    let mut strengths: Vec<u64> = Vec::new();
    for (_, _, d) in config.cells() {
        if d.kind != DefenseKind::None {
            if !kinds.contains(&d.kind.name()) {
                kinds.push(d.kind.name());
            }
            if !strengths.contains(&d.strength.to_bits()) {
                strengths.push(d.strength.to_bits());
            }
        }
    }
    eprintln!(
        "sweeping {} of {cells} cells (shard {shard_index}/{shard_count}; {} benchmarks × {} layers × [baseline + {} defenses × {} strengths]) …",
        config.shard_cells().len(),
        config.benchmarks.len(),
        config.split_layers.len(),
        kinds.len(),
        strengths.len(),
    );

    // Model-store selection: a remote attack_server (with --cache-dir as an
    // optional local write-through in front of it), a plain disk store, or
    // per-process memory.
    let store: Box<dyn ModelStore> = if let Some(url) = value_arg(&args, "--store-url") {
        let cache = value_arg(&args, "--cache-dir").map(PathBuf::from);
        match RemoteModelStore::open(&url, cache) {
            Ok(s) => {
                eprintln!("model store: {}", s.base_url());
                Box::new(s)
            }
            Err(e) => {
                eprintln!("--store-url {url}: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(dir) = value_arg(&args, "--cache-dir") {
        Box::new(DiskModelStore::open(dir).expect("open model store"))
    } else {
        Box::new(MemoryModelStore::new())
    };

    let run: MatrixRun = match deepsplit_engine::run(&engine_config, store.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("engine run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("{}", run.stats.summary());
    if record_timings {
        eprint!("{}", run.render_timings());
    }
    if let Some(path) = &trace_path {
        std::fs::write(path, deepsplit_obs::export_chrome_trace()).expect("write trace file");
        eprintln!("wrote trace {path}");
    }

    if run.is_full() {
        report_full(run.outcomes(), json_path);
    } else {
        // A shard prints its own rows; the regression artifact only exists
        // for the reassembled matrix (--json was rejected up front).
        print!("{}", sweep::render_matrix(&run.outcomes()));
        eprintln!(
            "shard {shard_index}/{shard_count} done; merge with: defense_matrix --merge --artifacts DIR [--json PATH]"
        );
    }
}
