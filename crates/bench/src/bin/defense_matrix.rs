//! The attack-vs-defense matrix: every defense at every strength against all
//! three attackers, with PPA overhead — the paper's future-work direction
//! quantified.
//!
//! ```text
//! cargo run --release --bin defense_matrix                    # fast default
//! cargo run --release --bin defense_matrix -- --designs c432,c880
//! cargo run --release --bin defense_matrix -- --strengths 0.25,0.5,1.0
//! cargo run --release --bin defense_matrix -- --layers 1,3 --images
//! cargo run --release --bin defense_matrix -- --json matrix.json
//! ```

use deepsplit_defense::sweep::{self, SweepConfig};
use deepsplit_defense::DefenseKind;
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::Benchmark;

fn list_arg(args: &[String], flag: &str) -> Option<Vec<String>> {
    let pos = args.iter().position(|a| a == flag)?;
    Some(args.get(pos + 1)?.split(',').map(str::to_string).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = SweepConfig::fast();

    if let Some(designs) = list_arg(&args, "--designs") {
        config.benchmarks = designs
            .iter()
            .filter_map(|n| Benchmark::from_name(n))
            .collect();
        assert!(
            !config.benchmarks.is_empty(),
            "--designs matched no benchmark"
        );
    }
    if let Some(strengths) = list_arg(&args, "--strengths") {
        config.strengths = strengths
            .iter()
            .map(|s| s.parse().expect("bad strength"))
            .collect();
    }
    if let Some(layers) = list_arg(&args, "--layers") {
        config.split_layers = layers
            .iter()
            .map(|l| Layer(l.parse().expect("bad layer")))
            .collect();
    }
    if let Some(kinds) = list_arg(&args, "--defenses") {
        config.kinds = kinds
            .iter()
            .map(|k| DefenseKind::from_name(k).expect("unknown defense"))
            .collect();
    }
    if args.iter().any(|a| a == "--images") {
        config.eval.attack.use_images = true;
    }

    let cells = config.cells().len();
    eprintln!(
        "sweeping {cells} cells ({} benchmarks × {} layers × [baseline + {} defenses × {} strengths]) …",
        config.benchmarks.len(),
        config.split_layers.len(),
        config.kinds.iter().filter(|&&k| k != DefenseKind::None).count(),
        config.strengths.len(),
    );
    let results = sweep::sweep(&config);
    print!("{}", sweep::render_matrix(&results));

    // Headline: the best protection factor each defense kind achieved.
    println!();
    for kind in DefenseKind::all()
        .into_iter()
        .filter(|&k| k != DefenseKind::None)
    {
        let best = results
            .iter()
            .filter(|r| r.defense.kind == kind)
            .map(|r| (sweep::protection_factor(&results, r), r))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((factor, r)) = best {
            println!(
                "best {:>9}: {:>5.1}× DL-CCR reduction on {} (M{}, strength {:.2}, {:+.1} % wirelength)",
                kind.name(),
                factor,
                r.benchmark,
                r.split_layer,
                r.defense.strength,
                r.defense.wirelength_overhead_pct(),
            );
        }
    }

    if let Some(path) = list_arg(&args, "--json").and_then(|v| v.into_iter().next()) {
        let json = serde_json::to_string(&results).expect("serialise matrix");
        std::fs::write(&path, json).expect("write matrix json");
        eprintln!("wrote {path}");
    }
}
