//! Regenerates the paper's **Table 2** (neural-network configuration) from a
//! constructed model, proving the realised architecture matches the paper.

use deepsplit_core::config::AttackConfig;
use deepsplit_core::model::{AttackModel, LossKind, ModelKind};
use deepsplit_nn::layers::Params;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = if args.iter().any(|a| a == "--fast") {
        AttackConfig::fast()
    } else {
        AttackConfig::paper()
    };
    // Paper setting: splitting on M3 → m = 3 → 2m bit planes × 3 scales.
    let channels = config.image_channels(3);
    let mut model = AttackModel::new(ModelKind::VecImg, LossKind::SoftmaxRegression, channels, 1);

    println!(
        "Table 2: Neural Network Configuration (n = {}, images {px}x{px}, {channels} channels)",
        config.candidates,
        px = config.image_px,
    );
    println!("{:-<56}", "");
    println!("{:<8} {:<8} Parameter / output", "Part", "Layer");
    for (part, layer, shape) in model.describe(config.image_px) {
        println!("{:<8} {:<8} {}", part, layer, shape);
    }
    println!("{:-<56}", "");
    println!("total trainable parameters: {}", model.num_params());
}
