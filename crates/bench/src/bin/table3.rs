//! Regenerates the paper's **Table 3**: per-design CCR and runtime of our DL
//! attack versus the network-flow attack (reference \[1\] of the paper),
//! splitting after M1 and M3.
//!
//! Usage:
//! ```text
//! table3 [--fast|--medium|--paper-scale] [--designs c432,b13,...] [--json out.json]
//! ```
//!
//! `N/A` marks network-flow timeouts, exactly as in the paper; averages and
//! ratio rows exclude timed-out designs "for fairness".

use deepsplit_bench::{design_filter, run_table3, table3_averages, Profile, Table3Report};
use deepsplit_netlist::benchmarks::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = Profile::from_args(&args);
    let designs = design_filter(&args);

    eprintln!(
        "running Table 3 under profile `{}` (training 2 models, attacking {} designs)…",
        profile.name,
        designs.as_ref().map(|d| d.len()).unwrap_or(16)
    );
    let report = run_table3(&profile, designs.clone());
    print_report(&report, designs.as_deref());

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(&report).expect("serialise report");
            std::fs::write(path, json).expect("write report");
            eprintln!("report written to {path}");
        }
    }
}

fn fmt_opt(v: Option<f64>, width: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.2}"),
        None => format!("{:>width$}", "N/A"),
    }
}

fn print_report(report: &Table3Report, filter: Option<&[Benchmark]>) {
    println!(
        "\nTable 3: Comparison with State-of-the-art Attack (profile `{}`)",
        report.profile
    );
    println!("{:-<118}", "");
    println!(
        "{:<8} | {:>6} {:>6} {:>8} {:>8} {:>9} {:>9} | {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
        "", "", "", "Metal 1", "", "", "", "", "", "Metal 3", "", "", ""
    );
    println!(
        "{:<8} | {:>6} {:>6} {:>8} {:>8} {:>9} {:>9} | {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
        "Design",
        "#Sk",
        "#Sc",
        "CCR[1]",
        "CCR-us",
        "RT[1] s",
        "RT-us s",
        "#Sk",
        "#Sc",
        "CCR[1]",
        "CCR-us",
        "RT[1] s",
        "RT-us s"
    );
    println!("{:-<118}", "");
    for row in &report.rows {
        println!(
            "{:<8} | {:>6} {:>6} {} {:>8.2} {} {:>9.2} | {:>6} {:>6} {} {:>8.2} {} {:>9.2}",
            row.design,
            row.m1.sk,
            row.m1.sc,
            fmt_opt(row.m1.flow_ccr, 8),
            row.m1.ours_ccr,
            fmt_opt(row.m1.flow_runtime_s, 9),
            row.m1.ours_runtime_s,
            row.m3.sk,
            row.m3.sc,
            fmt_opt(row.m3.flow_ccr, 8),
            row.m3.ours_ccr,
            fmt_opt(row.m3.flow_runtime_s, 9),
            row.m3.ours_runtime_s,
        );
    }
    println!("{:-<118}", "");
    let (f1, o1, fr1, or1) = table3_averages(report.rows.iter().map(|r| r.m1.clone()));
    let (f3, o3, fr3, or3) = table3_averages(report.rows.iter().map(|r| r.m3.clone()));
    println!(
        "{:<8} | {:>13} {:>8.2} {:>8.2} {:>9.2} {:>9.2} | {:>13} {:>8.2} {:>8.2} {:>9.2} {:>9.2}",
        "Average", "", f1, o1, fr1, or1, "", f3, o3, fr3, or3
    );
    println!(
        "{:<8} | {:>13} {:>8.2} {:>8.2} {:>9.3} {:>9.3} | {:>13} {:>8.2} {:>8.2} {:>9.3} {:>9.3}",
        "Ratio",
        "",
        1.0,
        if f1 > 0.0 { o1 / f1 } else { f64::NAN },
        1.0,
        if fr1 > 0.0 { or1 / fr1 } else { f64::NAN },
        "",
        1.0,
        if f3 > 0.0 { o3 / f3 } else { f64::NAN },
        1.0,
        if fr3 > 0.0 { or3 / fr3 } else { f64::NAN },
    );

    // Paper reference values for shape comparison.
    println!(
        "\nPaper reference (CCR %, for shape comparison — absolute values differ by construction):"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "Design", "M1 [1]", "M1 ours", "M3 [1]", "M3 ours"
    );
    for row in &report.rows {
        let Some(bench) = Benchmark::from_name(&row.design) else {
            continue;
        };
        if let Some(f) = filter {
            if !f.contains(&bench) {
                continue;
            }
        }
        let (_, _, _, _, f1, o1, f3, o3) = bench.paper_reference();
        println!(
            "{:<8} {:>10} {:>10.2} {:>10} {:>10.2}",
            row.design,
            f1.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "N/A".into()),
            o1,
            f3.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "N/A".into()),
            o3,
        );
    }
}
