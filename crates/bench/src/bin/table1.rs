//! Regenerates the paper's **Table 1** (VPP direction-preference truth table)
//! from the implemented criterion, and demonstrates it on a concrete layout.

use deepsplit_core::candidates::{prefers, select_candidates, table1_rows};
use deepsplit_core::config::AttackConfig;
use deepsplit_layout::design::{Design, ImplementConfig};
use deepsplit_layout::geom::Layer;
use deepsplit_layout::split::split_design;
use deepsplit_netlist::benchmarks::{generate_with, Benchmark};
use deepsplit_netlist::library::CellLibrary;

fn main() {
    println!("Table 1: VPP Preferences (direction criterion, paper §4.1)");
    println!("{:-<64}", "");
    println!(
        "{:<6} {:<6} {:<16} {:<16} Criterion",
        "Sk", "Sc", "Sk prefers Sc", "Sc prefers Sk"
    );
    let names = [("A", "A"), ("A", "B"), ("B", "A"), ("B", "B")];
    for ((sk, sc), (p1, p2, cand)) in names.iter().zip(table1_rows()) {
        let tick = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{:<6} {:<6} {:<16} {:<16} {}",
            sk,
            sc,
            tick(p1),
            tick(p2),
            tick(cand)
        );
    }

    // Live demonstration on a real split layout: count how many VPPs the
    // criterion rejects.
    let lib = CellLibrary::nangate45();
    let nl = generate_with(Benchmark::C432, 1.0, 7, &lib);
    let design = Design::implement(nl, lib, &ImplementConfig::default());
    let view = split_design(&design, Layer(3));
    let mut kept = 0usize;
    let mut dropped = 0usize;
    for &sink in &view.sinks {
        for &svp in &view.fragment(sink).virtual_pins {
            for &src in &view.sources {
                for &cvp in &view.fragment(src).virtual_pins {
                    if prefers(&view, sink, svp, cvp) || prefers(&view, src, cvp, svp) {
                        kept += 1;
                    } else {
                        dropped += 1;
                    }
                }
            }
        }
    }
    println!();
    println!(
        "c432 @ M3: direction criterion keeps {kept} of {} raw VPPs ({:.1} % rejected)",
        kept + dropped,
        100.0 * dropped as f64 / (kept + dropped).max(1) as f64
    );
    let sets = select_candidates(&view, &AttackConfig::fast());
    let covered = sets.iter().filter(|s| s.positive.is_some()).count();
    println!(
        "after all three criteria: {covered}/{} sink fragments keep their positive VPP",
        sets.len()
    );
}
