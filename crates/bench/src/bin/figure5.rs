//! Regenerates the paper's **Figure 5**: the loss/feature ablation at M3 —
//! average CCR (a) and average inference time (b) for three settings:
//! two-class loss (vector features), softmax regression (vector features),
//! and softmax regression with vector + image features.
//!
//! Usage:
//! ```text
//! figure5 [--fast|--medium|--paper-scale] [--designs c432,...] [--json out.json]
//! ```

use deepsplit_bench::{design_filter, run_figure5, Profile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = Profile::from_args(&args);
    let designs = design_filter(&args);

    eprintln!(
        "running Figure 5 ablation under profile `{}` (3 models, M3 split)…",
        profile.name
    );
    let report = run_figure5(&profile, designs);

    println!(
        "\nFigure 5: loss and feature ablation (M3 split, profile `{}`)",
        report.profile
    );
    println!("{:-<56}", "");
    println!(
        "{:<12} {:>14} {:>22}",
        "Setting", "avg CCR (%)", "avg inference (s)"
    );
    for p in &report.points {
        println!(
            "{:<12} {:>14.2} {:>22.3}",
            p.setting, p.avg_ccr, p.avg_inference_s
        );
    }
    println!("{:-<56}", "");
    if let (Some(base), Some(vec), Some(img)) = (
        report.points.first(),
        report.points.get(1),
        report.points.get(2),
    ) {
        if base.avg_ccr > 0.0 {
            println!(
                "softmax regression vs two-class: {:.3}x CCR (paper: 1.07x)",
                vec.avg_ccr / base.avg_ccr
            );
            println!(
                "adding image features:          {:.3}x CCR (paper: 1.09x total)",
                img.avg_ccr / base.avg_ccr
            );
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(&report).expect("serialise report");
            std::fs::write(path, json).expect("write report");
            eprintln!("report written to {path}");
        }
    }
}
