//! Prints the benchmark-suite statistics (design sizes, split fragment
//! counts) next to the paper's published `#Sk`/`#Sc` values — the sanity check
//! that our statistical-twin generator and splitter land in the right regime.

use deepsplit_bench::{implement_benchmark, Profile};
use deepsplit_layout::geom::Layer;
use deepsplit_layout::split::split_design;
use deepsplit_netlist::benchmarks::Benchmark;
use deepsplit_netlist::library::CellLibrary;
use deepsplit_netlist::stats::NetlistStats;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = Profile::from_args(&args);
    let lib = CellLibrary::nangate45();
    println!(
        "{:<8} {:>7} {:>5} {:>6} | {:>7} {:>7} {:>9} {:>9} | {:>7} {:>7} {:>9} {:>9}",
        "design",
        "gates",
        "depth",
        "scale",
        "Sk(M1)",
        "Sc(M1)",
        "paperSk1",
        "paperSc1",
        "Sk(M3)",
        "Sc(M3)",
        "paperSk3",
        "paperSc3"
    );
    for (i, bench) in Benchmark::all().into_iter().enumerate() {
        let design = implement_benchmark(&profile, bench, 2002 + i as u64);
        let stats = NetlistStats::compute(&design.netlist, &lib);
        let m1 = split_design(&design, Layer(1));
        let m3 = split_design(&design, Layer(3));
        let (psk1, psc1, psk3, psc3, ..) = bench.paper_reference();
        println!(
            "{:<8} {:>7} {:>5} {:>6.2} | {:>7} {:>7} {:>9} {:>9} | {:>7} {:>7} {:>9} {:>9}",
            bench.name(),
            stats.num_gates,
            stats.logic_depth,
            profile.scale_for(bench),
            m1.num_sink_fragments(),
            m1.num_source_fragments(),
            psk1,
            psc1,
            m3.num_sink_fragments(),
            m3.num_source_fragments(),
            psk3,
            psc3,
        );
    }
}
