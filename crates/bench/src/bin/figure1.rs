//! Regenerates the semantics of the paper's **Figure 1**: the fragment
//! taxonomy of a split layout — source fragments, sink fragments, FEOL
//! through-fragments, and their virtual pins — printed as a census plus one
//! concrete multi-fragment net drawn out in text.

use deepsplit_bench::{implement_benchmark, Profile};
use deepsplit_layout::geom::{to_um, Layer};
use deepsplit_layout::split::{split_design, FragKind};
use deepsplit_netlist::benchmarks::Benchmark;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = Profile::from_args(&args);
    let design = implement_benchmark(&profile, Benchmark::C880, 7);

    for layer in [1u8, 3] {
        let view = split_design(&design, Layer(layer));
        let mut census: HashMap<FragKind, usize> = HashMap::new();
        let mut vp_total = 0usize;
        for frag in &view.fragments {
            *census.entry(frag.kind).or_default() += 1;
            vp_total += frag.virtual_pins.len();
        }
        println!("Figure 1 census — c880 split after M{layer}:");
        for kind in [
            FragKind::Source,
            FragKind::Sink,
            FragKind::Through,
            FragKind::Complete,
        ] {
            println!(
                "  {:?} fragments: {}",
                kind,
                census.get(&kind).copied().unwrap_or(0)
            );
        }
        println!("  virtual pins in M{layer}: {vp_total}");
        println!(
            "  broken sink pins (CCR denominator): {}",
            view.total_broken_sinks()
        );
        println!();
    }

    // Draw one net that splits into several fragments, as in Fig. 1.
    let view = split_design(&design, Layer(3));
    let mut per_net: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, frag) in view.fragments.iter().enumerate() {
        if frag.kind != FragKind::Complete {
            per_net.entry(frag.net.0).or_default().push(i);
        }
    }
    if let Some((net, frags)) = per_net
        .iter()
        .filter(|(_, f)| f.len() >= 3)
        .max_by_key(|(_, f)| f.len())
    {
        println!(
            "example net {} splits into {} fragments @ M3:",
            net,
            frags.len()
        );
        for &fi in frags {
            let frag = &view.fragments[fi];
            let bbox = frag.bbox();
            println!(
                "  fragment {fi}: {:?}, {} segment(s), {} via(s), {} pin(s), {} virtual pin(s), bbox {:.1}x{:.1} um",
                frag.kind,
                frag.segments.len(),
                frag.vias.len(),
                frag.pins.len(),
                frag.virtual_pins.len(),
                to_um(bbox.width()),
                to_um(bbox.height()),
            );
            for vp in &frag.virtual_pins {
                println!(
                    "      virtual pin @ ({:.2}, {:.2}) um",
                    to_um(vp.x),
                    to_um(vp.y)
                );
            }
        }
    }
}
