//! The attack-inference server binary, plus a load generator and the
//! adversary-detection red team for the CI perf/detection trajectories.
//!
//! ```text
//! # Serve a disk-backed model store + ranked inference on port 8077:
//! cargo run --release --bin attack_server -- --cache-dir .model-store
//!
//! # Knobs: --addr HOST:PORT, --threads N (HTTP workers), --lru N
//! # (deserialized-model cache), --inference-threads N.
//!
//! # Query-stream adversary detection (off by default): --detect turns it
//! # on; --detect-window-ms N sets the scoring window, --detect-trigger N
//! # the hot windows before flagging, and --countermeasure
//! # observe|rate-limit|deceive what flagged clients get.
//! cargo run --release --bin attack_server -- --detect --countermeasure rate-limit
//!
//! # Point sweep shards at it from other machines:
//! cargo run --release --bin defense_matrix -- --store-url http://HOST:8077 …
//!
//! # Query it directly:
//! curl -s http://HOST:8077/healthz
//! curl -s http://HOST:8077/metrics               # detection block included
//! curl -s http://HOST:8077/models/<fingerprint>  # model blob
//! curl -s -X POST http://HOST:8077/attack -d @spec.json
//!
//! # Load loop (req/s + p50/p90/p99/p99.9 + the server's own per-endpoint
//! # histogram percentiles into BENCH_serve.json). --concurrency N drives
//! # the loop from N worker threads sharing one request counter.
//! cargo run --release --bin attack_server -- \
//!     --loadgen http://HOST:8077 --requests 200 --concurrency 4 --json BENCH_serve.json
//!
//! # Red-team profiles against a live detector-enabled server: --profile
//! # benign|harvest|stealthy POSTs shaped /attack traffic under --client ID
//! # (429 answers count as `rate_limited`, not failures).
//! cargo run --release --bin attack_server -- \
//!     --loadgen http://HOST:8077 --profile harvest --client mallory --requests 40
//!
//! # Offline deterministic ROC artifact (no server involved):
//! cargo run --release --bin attack_server -- --detect-roc --json BENCH_detect.json
//!
//! # Server-side tracing: --trace PATH keeps a chrome://tracing file of
//! # request spans (resolve/coalesce/infer), rewritten every few seconds.
//! cargo run --release --bin attack_server -- --trace serve-trace.json
//! ```
//!
//! Without `--cache-dir` the store is in-memory: still shared across every
//! client of this server process, gone when it exits.

use deepsplit_bench::cli::{usize_arg, value_arg};
use deepsplit_core::config::AttackConfig;
use deepsplit_core::httpc;
use deepsplit_core::store::{DiskModelStore, MemoryModelStore, ModelStore};
use deepsplit_defense::eval::EvalConfig;
use deepsplit_defense::service::AttackRequest;
use deepsplit_netlist::benchmarks::Benchmark;
use deepsplit_serve::detect::{roc, Countermeasure};
use deepsplit_serve::{start, DetectionSnapshot, EndpointLatencies, MetricsSnapshot, ServeConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The `BENCH_serve.json` artifact: one load-loop measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBenchReport {
    /// Server under test.
    url: String,
    /// Path every request hit (`/attack` for profile traffic).
    path: String,
    /// Requests attempted.
    requests: usize,
    /// Requests that did not answer 2xx (429s under a red-team profile are
    /// counted in `rate_limited` instead — they are the detector working).
    failures: usize,
    /// Successful requests whose latencies back the percentiles below.
    samples: usize,
    /// Requests answered `429 Too Many Requests` by the server's adversary
    /// detector (only expected under `--profile harvest`/`stealthy`).
    rate_limited: usize,
    /// Worker threads that drove the loop (`1` = the serial floor).
    concurrency: usize,
    /// Red-team traffic profile, when one was used.
    profile: Option<String>,
    /// Wall-clock of the whole loop in seconds.
    wall_s: f64,
    /// Successful requests per second.
    requests_per_sec: f64,
    /// Median request latency in milliseconds (client-side, exact).
    p50_ms: f64,
    /// 90th-percentile request latency in milliseconds.
    p90_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    p99_ms: f64,
    /// 99.9th-percentile request latency in milliseconds.
    p999_ms: f64,
    /// The server's own per-endpoint latency breakdown, scraped from
    /// `/metrics` after the loop (`null` when the scrape fails). Server
    /// percentiles are histogram-bucketed (~3 % error) and cover every
    /// request the process served, not just this loop's.
    server_endpoints: Option<EndpointLatencies>,
    /// The server's detection read-out after the loop (same scrape).
    server_detection: Option<DetectionSnapshot>,
}

/// A deliberately tiny evaluation protocol, mirroring the serve test suite:
/// a cold `/attack` trains in seconds, so red-team profiles can run against
/// a live server inside a CI job.
fn tiny_eval() -> EvalConfig {
    EvalConfig {
        attack: AttackConfig {
            use_images: false,
            candidates: 8,
            epochs: 4,
            batch_size: 16,
            threads: 2,
            ..AttackConfig::fast()
        },
        scale: 0.4,
        train_benchmarks: vec![Benchmark::C880],
        recovery_rounds: 6,
        train_query_cap: 150,
        ..EvalConfig::fast()
    }
}

/// The `i`-th request body of a red-team profile. Harvest hammers one
/// victim spec (same fingerprint, same candidate universe, machine-gun
/// pacing); benign cycles distinct victims with jittered pacing; stealthy
/// harvests on every third request and hides behind benign traffic
/// otherwise.
fn profile_spec(profile: &str, client: &str, i: usize) -> AttackRequest {
    let benign_victims = [Benchmark::C432, Benchmark::C1355, Benchmark::C1908];
    let bench = match profile {
        "harvest" => Benchmark::C432,
        "stealthy" if i.is_multiple_of(3) => Benchmark::C432,
        // Skip the harvest victim in stealthy cover traffic so the cover
        // and the harvest sub-stream stay distinguishable.
        "stealthy" => benign_victims[1 + i % 2],
        _ => benign_victims[i % benign_victims.len()],
    };
    AttackRequest {
        eval: tiny_eval(),
        top_k: 0,
        client: Some(client.to_string()),
        ..AttackRequest::fast(bench)
    }
}

/// How long the `i`-th request of a profile waits before firing:
/// deterministic jitter for benign/stealthy cover, nothing for harvest.
fn profile_pause(profile: &str, i: usize) -> Duration {
    match profile {
        "harvest" => Duration::ZERO,
        "stealthy" => Duration::from_millis(60 + (i as u64 * 29) % 120),
        _ => Duration::from_millis(120 + (i as u64 * 37) % 160),
    }
}

/// Outcome tallies of one loadgen worker.
#[derive(Default)]
struct WorkerTally {
    latencies_us: Vec<u64>,
    failures: usize,
    rate_limited: usize,
}

/// Request loop against the server: `concurrency` workers share one request
/// counter, so exactly `requests` requests are sent in total. Without
/// `--profile` every request is a `GET path`; with one, each is a shaped
/// `POST /attack`.
#[allow(clippy::too_many_arguments)]
fn loadgen(
    base: &str,
    path: &str,
    requests: usize,
    concurrency: usize,
    profile: Option<String>,
    client: String,
    json_out: Option<String>,
) {
    let base = base.trim_end_matches('/').to_string();
    let timeout = Duration::from_secs(300);
    let next = Arc::new(AtomicUsize::new(0));
    let tallies: Arc<Mutex<Vec<WorkerTally>>> = Arc::new(Mutex::new(Vec::new()));
    let concurrency = concurrency.max(1);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            let next = Arc::clone(&next);
            let tallies = Arc::clone(&tallies);
            let base = base.clone();
            let profile = profile.clone();
            let client = client.clone();
            scope.spawn(move || {
                let mut tally = WorkerTally::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let outcome = match &profile {
                        None => {
                            let url = format!("{base}{path}");
                            let t0 = Instant::now();
                            httpc::get(&url, timeout).map(|r| (r, t0.elapsed()))
                        }
                        Some(p) => {
                            std::thread::sleep(profile_pause(p, i));
                            let spec = profile_spec(p, &client, i);
                            let body = serde_json::to_string(&spec).expect("serialise attack spec");
                            let t0 = Instant::now();
                            httpc::post(&format!("{base}/attack"), body.as_bytes(), timeout)
                                .map(|r| (r, t0.elapsed()))
                        }
                    };
                    match outcome {
                        Ok((r, elapsed)) if r.is_success() => {
                            tally
                                .latencies_us
                                .push(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
                        }
                        Ok((r, _)) if r.status == 429 && profile.is_some() => {
                            tally.rate_limited += 1;
                        }
                        Ok((r, _)) => {
                            eprintln!("loadgen: request {i} answered HTTP {}", r.status);
                            tally.failures += 1;
                        }
                        Err(e) => {
                            eprintln!("loadgen: request {i}: {e}");
                            tally.failures += 1;
                        }
                    }
                }
                tallies.lock().expect("collect worker tally").push(tally);
            });
        }
    });
    let wall = started.elapsed();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let mut failures = 0usize;
    let mut rate_limited = 0usize;
    for tally in tallies.lock().expect("read worker tallies").drain(..) {
        latencies_us.extend(tally.latencies_us);
        failures += tally.failures;
        rate_limited += tally.rate_limited;
    }
    latencies_us.sort_unstable();
    // The server's own view of the same traffic (plus whatever else it
    // served) — best-effort: a scrape failure degrades the report, not the
    // run.
    let scraped = httpc::get(&format!("{base}/metrics"), timeout)
        .ok()
        .filter(|r| r.is_success())
        .and_then(|r| r.body_str().ok().map(str::to_string))
        .and_then(|body| serde_json::from_str::<MetricsSnapshot>(&body).ok());
    let report = ServeBenchReport {
        url: base.to_string(),
        path: if profile.is_some() {
            "/attack".to_string()
        } else {
            path.to_string()
        },
        requests,
        failures,
        samples: latencies_us.len(),
        rate_limited,
        concurrency,
        profile: profile.clone(),
        wall_s: wall.as_secs_f64(),
        requests_per_sec: latencies_us.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.50),
        p90_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.90),
        p99_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.99),
        p999_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.999),
        server_endpoints: scraped.as_ref().map(|m| m.endpoints),
        server_detection: scraped.map(|m| m.detection),
    };
    eprintln!(
        "loadgen: {} requests to {} in {:.2}s — {:.0} req/s, p50 {:.2}ms, p90 {:.2}ms, p99 {:.2}ms, p99.9 {:.2}ms, {} failures, {} rate-limited ({} workers)",
        report.requests,
        report.path,
        report.wall_s,
        report.requests_per_sec,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms,
        report.p999_ms,
        report.failures,
        report.rate_limited,
        report.concurrency,
    );
    if failures > 0 {
        eprintln!(
            "loadgen: warning: {failures} of {requests} requests failed — percentiles cover only the {} successful samples",
            report.samples
        );
    }
    if let Some(path) = json_out {
        let json = serde_json::to_string_pretty(&report).expect("serialise bench report");
        std::fs::write(&path, json).expect("write bench report");
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Offline detection ROC: deterministic synthetic profile streams through a
/// fresh detector, swept across thresholds — `BENCH_detect.json`.
fn detect_roc(args: &[String]) {
    let requests = usize_arg(args, "--requests", 240);
    let window_ms = usize_arg(args, "--window-ms", 1_000);
    let seed = usize_arg(args, "--seed", 42) as u64;
    let report = roc::run(requests, window_ms as u64 * 1_000, seed);
    eprintln!(
        "detect_roc: {} requests/profile, {window_ms}ms windows, seed {seed} — AUC harvest {:.4}, stealthy {:.4} (benign mean {:.3}, harvest mean {:.3})",
        report.requests_per_profile,
        report.auc_harvest_vs_benign,
        report.auc_stealthy_vs_benign,
        report.mean_benign_score,
        report.mean_harvest_score,
    );
    let json = serde_json::to_string_pretty(&report).expect("serialise ROC report");
    match value_arg(args, "--json") {
        Some(path) => {
            std::fs::write(&path, json).expect("write ROC report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--detect-roc") {
        detect_roc(&args);
        return;
    }

    if let Some(base) = value_arg(&args, "--loadgen") {
        let requests = usize_arg(&args, "--requests", 200);
        let concurrency = usize_arg(&args, "--concurrency", 1);
        let path = value_arg(&args, "--path").unwrap_or_else(|| "/healthz".to_string());
        let profile = value_arg(&args, "--profile");
        if let Some(p) = &profile {
            assert!(
                matches!(p.as_str(), "benign" | "harvest" | "stealthy"),
                "bad --profile `{p}` (benign|harvest|stealthy)"
            );
        }
        let client = value_arg(&args, "--client")
            .or_else(|| profile.clone())
            .unwrap_or_else(|| "loadgen".to_string());
        loadgen(
            &base,
            &path,
            requests,
            concurrency,
            profile,
            client,
            value_arg(&args, "--json"),
        );
        return;
    }

    let mut detect = ServeConfig::default().detect;
    detect.enabled = args.iter().any(|a| a == "--detect");
    detect.window_us = usize_arg(
        &args,
        "--detect-window-ms",
        (detect.window_us / 1_000) as usize,
    ) as u64
        * 1_000;
    detect.trigger_windows = usize_arg(&args, "--detect-trigger", detect.trigger_windows);
    if let Some(cm) = value_arg(&args, "--countermeasure") {
        detect.countermeasure = Countermeasure::from_name(&cm)
            .unwrap_or_else(|| panic!("bad --countermeasure `{cm}` (observe|rate-limit|deceive)"));
    }
    let config = ServeConfig {
        addr: value_arg(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".to_string()),
        threads: usize_arg(&args, "--threads", ServeConfig::default().threads),
        lru_capacity: usize_arg(&args, "--lru", ServeConfig::default().lru_capacity),
        inference_threads: usize_arg(
            &args,
            "--inference-threads",
            ServeConfig::default().inference_threads,
        ),
        detect,
    };
    let store: Arc<dyn ModelStore + Send + Sync> = match value_arg(&args, "--cache-dir") {
        Some(dir) => {
            let store = DiskModelStore::open(&dir).expect("open model store");
            eprintln!("model store: {dir}");
            Arc::new(store)
        }
        None => {
            eprintln!("model store: in-memory (pass --cache-dir DIR to persist)");
            Arc::new(MemoryModelStore::new())
        }
    };

    // `wait()` below never returns, so a traced server exports from a
    // background thread: the trace file is rewritten in full every few
    // seconds (the recorder's fill-once buffer makes each rewrite a superset
    // of the last).
    if let Some(trace_path) = value_arg(&args, "--trace") {
        deepsplit_obs::install(deepsplit_obs::DEFAULT_TRACE_CAPACITY);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs(5));
            if let Err(e) = std::fs::write(&trace_path, deepsplit_obs::export_chrome_trace()) {
                eprintln!("trace export {trace_path}: {e}");
            }
        });
        eprintln!("tracing: chrome trace exported every 5s");
    }

    if config.detect.enabled {
        eprintln!(
            "detection: on — {}ms windows, trigger {}, countermeasure {}",
            config.detect.window_us / 1_000,
            config.detect.trigger_windows,
            config.detect.countermeasure.name(),
        );
    }
    let server = start(&config, store).expect("bind server address");
    eprintln!(
        "attack_server listening on http://{} ({} workers, LRU {})",
        server.addr(),
        config.threads,
        config.lru_capacity,
    );
    server.wait();
}
