//! The attack-inference server binary, plus a small load generator for the
//! CI perf trajectory.
//!
//! ```text
//! # Serve a disk-backed model store + ranked inference on port 8077:
//! cargo run --release --bin attack_server -- --cache-dir .model-store
//!
//! # Knobs: --addr HOST:PORT, --threads N (HTTP workers), --lru N
//! # (deserialized-model cache), --inference-threads N.
//!
//! # Point sweep shards at it from other machines:
//! cargo run --release --bin defense_matrix -- --store-url http://HOST:8077 …
//!
//! # Query it directly:
//! curl -s http://HOST:8077/healthz
//! curl -s http://HOST:8077/metrics
//! curl -s http://HOST:8077/models/<fingerprint>        # model blob
//! curl -s -X POST http://HOST:8077/attack -d @spec.json
//!
//! # Load loop (req/s + p50/p90/p99/p99.9 + the server's own per-endpoint
//! # histogram percentiles into BENCH_serve.json):
//! cargo run --release --bin attack_server -- \
//!     --loadgen http://HOST:8077 --requests 200 --json BENCH_serve.json
//!
//! # Server-side tracing: --trace PATH keeps a chrome://tracing file of
//! # request spans (resolve/coalesce/infer), rewritten every few seconds.
//! cargo run --release --bin attack_server -- --trace serve-trace.json
//! ```
//!
//! Without `--cache-dir` the store is in-memory: still shared across every
//! client of this server process, gone when it exits.

use deepsplit_bench::cli::{usize_arg, value_arg};
use deepsplit_core::httpc;
use deepsplit_core::store::{DiskModelStore, MemoryModelStore, ModelStore};
use deepsplit_serve::{start, EndpointLatencies, MetricsSnapshot, ServeConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The `BENCH_serve.json` artifact: one load-loop measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBenchReport {
    /// Server under test.
    url: String,
    /// Path every request hit.
    path: String,
    /// Requests attempted.
    requests: usize,
    /// Requests that did not answer 2xx (or failed outright).
    failures: usize,
    /// Wall-clock of the whole loop in seconds.
    wall_s: f64,
    /// Successful requests per second.
    requests_per_sec: f64,
    /// Median request latency in milliseconds (client-side, exact).
    p50_ms: f64,
    /// 90th-percentile request latency in milliseconds.
    p90_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    p99_ms: f64,
    /// 99.9th-percentile request latency in milliseconds.
    p999_ms: f64,
    /// The server's own per-endpoint latency breakdown, scraped from
    /// `/metrics` after the loop (`null` when the scrape fails). Server
    /// percentiles are histogram-bucketed (~3 % error) and cover every
    /// request the process served, not just this loop's.
    server_endpoints: Option<EndpointLatencies>,
}

/// Serial request loop against `base + path`: the single-client floor of the
/// serve perf trajectory (no pipelining, one connection per request — the
/// same cost model as `RemoteModelStore`).
fn loadgen(base: &str, path: &str, requests: usize, json_out: Option<String>) {
    let url = format!("{}{path}", base.trim_end_matches('/'));
    let timeout = Duration::from_secs(30);
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let mut failures = 0usize;
    let started = Instant::now();
    for _ in 0..requests {
        let t0 = Instant::now();
        match httpc::get(&url, timeout) {
            Ok(r) if r.is_success() => {
                latencies_us.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Ok(r) => {
                eprintln!("loadgen: {url} answered HTTP {}", r.status);
                failures += 1;
            }
            Err(e) => {
                eprintln!("loadgen: {url}: {e}");
                failures += 1;
            }
        }
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    // The server's own per-endpoint view of the same traffic (plus whatever
    // else it served) — best-effort: a scrape failure degrades the report,
    // not the run.
    let server_endpoints = httpc::get(&format!("{}/metrics", base.trim_end_matches('/')), timeout)
        .ok()
        .filter(|r| r.is_success())
        .and_then(|r| r.body_str().ok().map(str::to_string))
        .and_then(|body| serde_json::from_str::<MetricsSnapshot>(&body).ok())
        .map(|m| m.endpoints);
    let report = ServeBenchReport {
        url: base.to_string(),
        path: path.to_string(),
        requests,
        failures,
        wall_s: wall.as_secs_f64(),
        requests_per_sec: latencies_us.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.50),
        p90_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.90),
        p99_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.99),
        p999_ms: deepsplit_serve::metrics::percentile_ms(&latencies_us, 0.999),
        server_endpoints,
    };
    eprintln!(
        "loadgen: {} requests to {} in {:.2}s — {:.0} req/s, p50 {:.2}ms, p90 {:.2}ms, p99 {:.2}ms, p99.9 {:.2}ms, {} failures",
        report.requests,
        report.path,
        report.wall_s,
        report.requests_per_sec,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms,
        report.p999_ms,
        report.failures,
    );
    if let Some(path) = json_out {
        let json = serde_json::to_string_pretty(&report).expect("serialise bench report");
        std::fs::write(&path, json).expect("write bench report");
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(base) = value_arg(&args, "--loadgen") {
        let requests = usize_arg(&args, "--requests", 200);
        let path = value_arg(&args, "--path").unwrap_or_else(|| "/healthz".to_string());
        loadgen(&base, &path, requests, value_arg(&args, "--json"));
        return;
    }

    let config = ServeConfig {
        addr: value_arg(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8077".to_string()),
        threads: usize_arg(&args, "--threads", ServeConfig::default().threads),
        lru_capacity: usize_arg(&args, "--lru", ServeConfig::default().lru_capacity),
        inference_threads: usize_arg(
            &args,
            "--inference-threads",
            ServeConfig::default().inference_threads,
        ),
    };
    let store: Arc<dyn ModelStore + Send + Sync> = match value_arg(&args, "--cache-dir") {
        Some(dir) => {
            let store = DiskModelStore::open(&dir).expect("open model store");
            eprintln!("model store: {dir}");
            Arc::new(store)
        }
        None => {
            eprintln!("model store: in-memory (pass --cache-dir DIR to persist)");
            Arc::new(MemoryModelStore::new())
        }
    };

    // `wait()` below never returns, so a traced server exports from a
    // background thread: the trace file is rewritten in full every few
    // seconds (the recorder's fill-once buffer makes each rewrite a superset
    // of the last).
    if let Some(trace_path) = value_arg(&args, "--trace") {
        deepsplit_obs::install(deepsplit_obs::DEFAULT_TRACE_CAPACITY);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs(5));
            if let Err(e) = std::fs::write(&trace_path, deepsplit_obs::export_chrome_trace()) {
                eprintln!("trace export {trace_path}: {e}");
            }
        });
        eprintln!("tracing: chrome trace exported every 5s");
    }

    let server = start(&config, store).expect("bind server address");
    eprintln!(
        "attack_server listening on http://{} ({} workers, LRU {})",
        server.addr(),
        config.threads,
        config.lru_capacity,
    );
    server.wait();
}
