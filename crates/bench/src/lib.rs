//! Experiment harness: shared plumbing for regenerating every table and
//! figure of the DAC'19 paper.
//!
//! The binaries in `src/bin` print the artefacts:
//!
//! * `table1` — VPP preference truth table (paper Table 1),
//! * `table2` — realised network configuration (paper Table 2),
//! * `table3` — CCR + runtime versus the network-flow attack, M1 and M3
//!   splits (paper Table 3),
//! * `figure2` — image-feature dump for one virtual pin (paper Fig. 2),
//! * `figure5` — loss/feature ablation (paper Fig. 5),
//! * `stats` — benchmark-suite statistics.
//!
//! Profiles scale the experiment to the machine: `fast` (default) caps design
//! sizes and uses reduced image resolution; `medium` runs the mid-sized
//! designs at full size; `paper` uses the paper's exact parameters
//! (99×99 images, n = 31, full-size designs — expect very long CPU runtimes).

use deepsplit_core::config::AttackConfig;
use deepsplit_core::dataset::PreparedDesign;
use deepsplit_core::{attack, train};
use deepsplit_flow::attack::{network_flow_attack, FlowAttackConfig, FlowOutcome};
use deepsplit_flow::metrics::{ccr, Assignment};
use deepsplit_flow::proximity::proximity_attack;
use deepsplit_layout::design::{Design, ImplementConfig};
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::{self, Benchmark};
use deepsplit_netlist::library::CellLibrary;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Experiment profile: how large and how accurate a run is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Human-readable name recorded in reports.
    pub name: String,
    /// Cap on generated gate count (designs above it are scaled down).
    pub max_gates: usize,
    /// Attack configuration (images, candidates, epochs, …).
    pub attack: AttackConfig,
    /// Per-design cap on training queries.
    pub train_query_cap: usize,
    /// Wall-clock budget for the network-flow baseline per design
    /// (the paper used 100 000 s; `N/A` on timeout).
    pub flow_timeout: Duration,
    /// Seed for training layouts.
    pub train_seed: u64,
    /// Seed for attacked layouts (distinct: the attacker trains on *other*
    /// layouts generated in a similar manner, per the threat model).
    pub attack_seed: u64,
}

impl Profile {
    /// Default CPU-friendly profile.
    pub fn fast() -> Profile {
        Profile {
            name: "fast".into(),
            max_gates: 3000,
            attack: AttackConfig {
                candidates: 19,
                image_px: 13,
                image_scales_um: vec![0.1, 0.3, 0.9],
                epochs: 14,
                batch_size: 24,
                ..AttackConfig::paper()
            },
            train_query_cap: 300,
            flow_timeout: Duration::from_secs(120),
            train_seed: 1001,
            attack_seed: 2002,
        }
    }

    /// Mid-size profile: full-size designs up to ~10 k gates, larger images.
    pub fn medium() -> Profile {
        Profile {
            name: "medium".into(),
            max_gates: 10_000,
            attack: AttackConfig {
                candidates: 23,
                image_px: 25,
                image_scales_um: vec![0.05, 0.2, 0.8],
                epochs: 16,
                batch_size: 24,
                ..AttackConfig::paper()
            },
            train_query_cap: 400,
            flow_timeout: Duration::from_secs(600),
            train_seed: 1001,
            attack_seed: 2002,
        }
    }

    /// The paper's parameters (very slow on CPU; provided for completeness).
    pub fn paper() -> Profile {
        Profile {
            name: "paper".into(),
            max_gates: usize::MAX,
            attack: AttackConfig::paper(),
            train_query_cap: usize::MAX,
            flow_timeout: Duration::from_secs(100_000),
            train_seed: 1001,
            attack_seed: 2002,
        }
    }

    /// Parses `--paper-scale` / `--medium` / `--fast` from CLI args.
    pub fn from_args(args: &[String]) -> Profile {
        if args.iter().any(|a| a == "--paper-scale") {
            Profile::paper()
        } else if args.iter().any(|a| a == "--medium") {
            Profile::medium()
        } else {
            Profile::fast()
        }
    }

    /// Generation scale factor for a benchmark under this profile.
    pub fn scale_for(&self, bench: Benchmark) -> f64 {
        let gates = bench.config().num_gates;
        if gates <= self.max_gates {
            1.0
        } else {
            self.max_gates as f64 / gates as f64
        }
    }
}

/// Shared `--flag value` parsing for the bench binaries, so
/// `defense_matrix`, `attack_server` and friends cannot drift apart on CLI
/// conventions.
pub mod cli {
    /// The value following `flag`, if present.
    pub fn value_arg(args: &[String], flag: &str) -> Option<String> {
        let pos = args.iter().position(|a| a == flag)?;
        args.get(pos + 1).cloned()
    }

    /// The comma-separated list following `flag`, if present.
    pub fn list_arg(args: &[String], flag: &str) -> Option<Vec<String>> {
        Some(
            value_arg(args, flag)?
                .split(',')
                .map(str::to_string)
                .collect(),
        )
    }

    /// The value following `flag` parsed as a `usize`, or `default` when
    /// the flag is absent.
    ///
    /// # Panics
    ///
    /// Panics (with the flag and offending value named) when the value does
    /// not parse — CLI misconfigurations should fail loudly up front.
    pub fn usize_arg(args: &[String], flag: &str, default: usize) -> usize {
        value_arg(args, flag)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("bad {flag} value `{v}`"))
            })
            .unwrap_or(default)
    }
}

/// Parses a `--designs c432,b13` CLI filter.
pub fn design_filter(args: &[String]) -> Option<Vec<Benchmark>> {
    let pos = args.iter().position(|a| a == "--designs")?;
    let list = args.get(pos + 1)?;
    Some(list.split(',').filter_map(Benchmark::from_name).collect())
}

/// Implements one benchmark layout under a profile.
pub fn implement_benchmark(profile: &Profile, bench: Benchmark, seed: u64) -> Design {
    let lib = CellLibrary::nangate45();
    let scale = profile.scale_for(bench);
    let nl = benchmarks::generate_with(bench, scale, seed, &lib);
    let implement = if nl.num_instances() > 20_000 {
        ImplementConfig::fast()
    } else {
        ImplementConfig::default()
    };
    Design::implement(nl, lib, &implement)
}

/// One Table 3 row for one split layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Cell {
    /// Sink-fragment count (`#Sk`).
    pub sk: usize,
    /// Source-fragment count (`#Sc`).
    pub sc: usize,
    /// Network-flow CCR in percent; `None` = timed out (`N/A`).
    pub flow_ccr: Option<f64>,
    /// Our CCR in percent.
    pub ours_ccr: f64,
    /// Naïve proximity CCR in percent (extra diagnostic, not in the paper).
    pub proximity_ccr: f64,
    /// Network-flow runtime in seconds; `None` = timed out.
    pub flow_runtime_s: Option<f64>,
    /// Our runtime in seconds (feature extraction + inference).
    pub ours_runtime_s: f64,
}

/// A full Table 3 row (both split layers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Design name.
    pub design: String,
    /// Metal-1 split results.
    pub m1: Table3Cell,
    /// Metal-3 split results.
    pub m3: Table3Cell,
}

/// The complete Table 3 artefact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Report {
    /// Profile used.
    pub profile: String,
    /// Per-design rows.
    pub rows: Vec<Table3Row>,
    /// Epoch losses of the two trained models (M1, M3).
    pub train_loss: [Vec<f32>; 2],
}

/// Trains the attack for one split layer over the paper's training designs.
pub fn train_for_layer(profile: &Profile, layer: Layer) -> train::TrainedAttack {
    let mut prepared = Vec::new();
    for (i, bench) in Benchmark::training_set().into_iter().enumerate() {
        let design = implement_benchmark(profile, bench, profile.train_seed + i as u64);
        let mut p = PreparedDesign::prepare(&design, layer, &profile.attack);
        p.truncate_queries(profile.train_query_cap, profile.train_seed);
        prepared.push(p);
    }
    let (trained, _) = train::train(&prepared, &profile.attack);
    trained
}

/// Like [`train_for_layer`] but also returns the report.
pub fn train_for_layer_with_report(
    profile: &Profile,
    layer: Layer,
) -> (train::TrainedAttack, train::TrainReport) {
    let mut prepared = Vec::new();
    for (i, bench) in Benchmark::training_set().into_iter().enumerate() {
        let design = implement_benchmark(profile, bench, profile.train_seed + i as u64);
        let mut p = PreparedDesign::prepare(&design, layer, &profile.attack);
        p.truncate_queries(profile.train_query_cap, profile.train_seed);
        prepared.push(p);
    }
    train::train(&prepared, &profile.attack)
}

/// Attacks one design with all three attacks; returns the Table 3 cell.
pub fn attack_design(
    profile: &Profile,
    trained: &train::TrainedAttack,
    design: &Design,
    layer: Layer,
) -> Table3Cell {
    // Ours: preparation (feature extraction) + inference, as in the paper.
    let t0 = Instant::now();
    let prepared = PreparedDesign::prepare(design, layer, &profile.attack);
    let outcome = attack::attack(trained, &prepared);
    let ours_runtime = t0.elapsed();
    let ours_ccr = 100.0 * ccr(&prepared.view, &outcome.assignment);

    // Baselines operate on the same split view.
    let view = &prepared.view;
    let prox: Assignment = proximity_attack(view);
    let proximity_ccr = 100.0 * ccr(view, &prox);

    let flow_config = FlowAttackConfig {
        timeout: Some(profile.flow_timeout),
        ..FlowAttackConfig::default()
    };
    let t1 = Instant::now();
    let flow = network_flow_attack(view, &design.netlist, &design.library, &flow_config);
    let flow_runtime = t1.elapsed();
    let (flow_ccr, flow_runtime_s) = match flow {
        FlowOutcome::Completed(a) => (
            Some(100.0 * ccr(view, &a)),
            Some(flow_runtime.as_secs_f64()),
        ),
        FlowOutcome::TimedOut => (None, None),
    };

    Table3Cell {
        sk: view.num_sink_fragments(),
        sc: view.num_source_fragments(),
        flow_ccr,
        ours_ccr,
        proximity_ccr,
        flow_runtime_s,
        ours_runtime_s: ours_runtime.as_secs_f64(),
    }
}

/// Regenerates Table 3 for the given designs (default: all sixteen).
pub fn run_table3(profile: &Profile, designs: Option<Vec<Benchmark>>) -> Table3Report {
    let designs = designs.unwrap_or_else(|| Benchmark::all().to_vec());
    let (trained_m1, rep1) = train_for_layer_with_report(profile, Layer(1));
    let (trained_m3, rep3) = train_for_layer_with_report(profile, Layer(3));
    let mut rows = Vec::new();
    for (i, bench) in designs.iter().enumerate() {
        let design = implement_benchmark(profile, *bench, profile.attack_seed + i as u64);
        let m1 = attack_design(profile, &trained_m1, &design, Layer(1));
        let m3 = attack_design(profile, &trained_m3, &design, Layer(3));
        rows.push(Table3Row {
            design: bench.name().to_string(),
            m1,
            m3,
        });
    }
    Table3Report {
        profile: profile.name.clone(),
        rows,
        train_loss: [rep1.epoch_loss, rep3.epoch_loss],
    }
}

/// Averages of a Table 3 report, excluding designs where the flow attack
/// timed out (as the paper does "for fairness").
pub fn table3_averages(cells: impl Iterator<Item = Table3Cell> + Clone) -> (f64, f64, f64, f64) {
    let both: Vec<Table3Cell> = cells.clone().filter(|c| c.flow_ccr.is_some()).collect();
    let n = both.len().max(1) as f64;
    let flow_ccr = both.iter().filter_map(|c| c.flow_ccr).sum::<f64>() / n;
    let ours_ccr = both.iter().map(|c| c.ours_ccr).sum::<f64>() / n;
    let flow_rt = both.iter().filter_map(|c| c.flow_runtime_s).sum::<f64>() / n;
    let ours_rt = both.iter().map(|c| c.ours_runtime_s).sum::<f64>() / n;
    (flow_ccr, ours_ccr, flow_rt, ours_rt)
}

/// One Figure 5 series entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Setting name (`Two-class`, `Vec`, `Vec & Img`).
    pub setting: String,
    /// Average CCR in percent over the attacked designs.
    pub avg_ccr: f64,
    /// Average inference time in seconds.
    pub avg_inference_s: f64,
}

/// The complete Figure 5 artefact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Report {
    /// Profile used.
    pub profile: String,
    /// The three ablation points.
    pub points: Vec<Fig5Point>,
}

/// Regenerates Figure 5: two-class vs softmax-regression (vector only) vs
/// softmax-regression with images, all splitting on M3.
pub fn run_figure5(profile: &Profile, designs: Option<Vec<Benchmark>>) -> Fig5Report {
    let layer = Layer(3);
    let victims: Vec<Benchmark> = designs.unwrap_or_else(|| Benchmark::validation_set().to_vec());
    let settings: [(&str, bool, bool); 3] = [
        ("Two-class", false, true),
        ("Vec", false, false),
        ("Vec & Img", true, false),
    ];
    // Implement victims once.
    let victim_designs: Vec<Design> = victims
        .iter()
        .enumerate()
        .map(|(i, b)| implement_benchmark(profile, *b, profile.attack_seed + 100 + i as u64))
        .collect();
    let mut points = Vec::new();
    for (name, use_images, two_class) in settings {
        let config = AttackConfig {
            use_images,
            two_class,
            ..profile.attack.clone()
        };
        let sub_profile = Profile {
            attack: config.clone(),
            ..profile.clone()
        };
        let trained = train_for_layer(&sub_profile, layer);
        let mut ccr_sum = 0.0;
        let mut time_sum = 0.0;
        for design in &victim_designs {
            let t0 = Instant::now();
            let prepared = PreparedDesign::prepare(design, layer, &config);
            let outcome = attack::attack(&trained, &prepared);
            time_sum += t0.elapsed().as_secs_f64();
            ccr_sum += 100.0 * ccr(&prepared.view, &outcome.assignment);
        }
        points.push(Fig5Point {
            setting: name.to_string(),
            avg_ccr: ccr_sum / victim_designs.len().max(1) as f64,
            avg_inference_s: time_sum / victim_designs.len().max(1) as f64,
        });
    }
    Fig5Report {
        profile: profile.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_scaling() {
        let p = Profile::fast();
        assert_eq!(p.scale_for(Benchmark::C432), 1.0);
        assert!(p.scale_for(Benchmark::B18) < 0.1);
        let paper = Profile::paper();
        assert_eq!(paper.scale_for(Benchmark::B18), 1.0);
    }

    #[test]
    fn design_filter_parses() {
        let args: Vec<String> = ["x", "--designs", "c432,b13"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = design_filter(&args).unwrap();
        assert_eq!(f, vec![Benchmark::C432, Benchmark::B13]);
        assert!(design_filter(&["x".to_string()]).is_none());
    }

    #[test]
    fn averages_skip_timeouts() {
        let done = Table3Cell {
            sk: 1,
            sc: 1,
            flow_ccr: Some(50.0),
            ours_ccr: 60.0,
            proximity_ccr: 40.0,
            flow_runtime_s: Some(10.0),
            ours_runtime_s: 1.0,
        };
        let na = Table3Cell {
            flow_ccr: None,
            flow_runtime_s: None,
            ..done.clone()
        };
        let cells = vec![done, na];
        let (f, o, fr, or) = table3_averages(cells.into_iter());
        assert_eq!(f, 50.0);
        assert_eq!(o, 60.0);
        assert_eq!(fr, 10.0);
        assert_eq!(or, 1.0);
    }
}
