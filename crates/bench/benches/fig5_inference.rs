//! Criterion benches for Figure 5(b): average inference time of the three
//! ablation settings (two-class / vector-only / vector + images) on an M3
//! split, mirroring the paper's bar chart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepsplit_bench::{implement_benchmark, Profile};
use deepsplit_core::config::AttackConfig;
use deepsplit_core::dataset::PreparedDesign;
use deepsplit_core::{attack, train};
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::Benchmark;

fn bench_fig5_inference(c: &mut Criterion) {
    let profile = Profile::fast();
    let layer = Layer(3);
    let victim_design = implement_benchmark(&profile, Benchmark::C432, 77);
    let train_design = implement_benchmark(&profile, Benchmark::C880, 78);

    let settings: [(&str, bool, bool); 3] = [
        ("two_class", false, true),
        ("vec", false, false),
        ("vec_img", true, false),
    ];

    let mut group = c.benchmark_group("fig5_inference");
    group.sample_size(10);
    for (name, use_images, two_class) in settings {
        let config = AttackConfig {
            use_images,
            two_class,
            epochs: 2,
            ..profile.attack.clone()
        };
        let train_data = vec![PreparedDesign::prepare(&train_design, layer, &config)];
        let (trained, _) = train::train(&train_data, &config);
        let victim = PreparedDesign::prepare(&victim_design, layer, &config);
        group.bench_with_input(BenchmarkId::new("inference", name), &victim, |b, victim| {
            b.iter(|| attack::attack(&trained, victim))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_inference);
criterion_main!(benches);
