//! Criterion benches for the runtime columns of the paper's Table 3: the DL
//! attack (feature extraction + inference) versus the network-flow attack on
//! representative designs at both split layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepsplit_bench::{implement_benchmark, train_for_layer, Profile};
use deepsplit_core::dataset::PreparedDesign;
use deepsplit_core::{attack, train::TrainedAttack};
use deepsplit_flow::attack::{network_flow_attack, FlowAttackConfig};
use deepsplit_layout::design::Design;
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::Benchmark;

/// Small training run shared by all benches (2 epochs, capped queries).
fn quick_trained(profile: &Profile, layer: Layer) -> TrainedAttack {
    let mut p = profile.clone();
    p.attack.epochs = 2;
    p.train_query_cap = 60;
    train_for_layer(&p, layer)
}

fn bench_table3_runtime(c: &mut Criterion) {
    let profile = Profile::fast();
    let designs: Vec<(Benchmark, Design)> = [Benchmark::C432, Benchmark::C880]
        .into_iter()
        .map(|b| (b, implement_benchmark(&profile, b, 42)))
        .collect();

    for layer in [Layer(1), Layer(3)] {
        let trained = quick_trained(&profile, layer);
        let mut group = c.benchmark_group(format!("table3_runtime_m{}", layer.0));
        group.sample_size(10);
        for (bench, design) in &designs {
            group.bench_with_input(
                BenchmarkId::new("ours_total", bench.name()),
                design,
                |b, design| {
                    b.iter(|| {
                        let prepared = PreparedDesign::prepare(design, layer, &profile.attack);
                        attack::attack(&trained, &prepared)
                    })
                },
            );
            let prepared = PreparedDesign::prepare(design, layer, &profile.attack);
            group.bench_with_input(
                BenchmarkId::new("ours_inference_only", bench.name()),
                &prepared,
                |b, prepared| b.iter(|| attack::attack(&trained, prepared)),
            );
            group.bench_with_input(
                BenchmarkId::new("network_flow", bench.name()),
                &(design, &prepared),
                |b, (design, prepared)| {
                    b.iter(|| {
                        network_flow_attack(
                            &prepared.view,
                            &design.netlist,
                            &design.library,
                            &FlowAttackConfig::default(),
                        )
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table3_runtime);
criterion_main!(benches);
