//! Ablation benches beyond the paper's figures, probing the design choices
//! called out in DESIGN.md:
//!
//! * candidate-count sweep (`n` of §4.1) — cost of candidate selection per `n`;
//! * image-resolution sweep — rendering cost per pixel budget;
//! * flow-attack capacitance-slack sweep — the relaxation toward the naïve
//!   proximity attack;
//! * physical-design substrate costs (placement, routing, splitting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepsplit_bench::{implement_benchmark, Profile};
use deepsplit_core::candidates::select_candidates;
use deepsplit_core::config::AttackConfig;
use deepsplit_core::image_features::ImageExtractor;
use deepsplit_flow::attack::{network_flow_attack, FlowAttackConfig};
use deepsplit_layout::design::{Design, ImplementConfig};
use deepsplit_layout::floorplan::Floorplan;
use deepsplit_layout::geom::Layer;
use deepsplit_layout::place::{place, PlacerConfig};
use deepsplit_layout::route::{route, RouterConfig};
use deepsplit_layout::split::split_design;
use deepsplit_netlist::benchmarks::{generate_with, Benchmark};
use deepsplit_netlist::library::CellLibrary;

fn bench_candidate_sweep(c: &mut Criterion) {
    let profile = Profile::fast();
    let design = implement_benchmark(&profile, Benchmark::C880, 90);
    let view = split_design(&design, Layer(3));
    let mut group = c.benchmark_group("candidate_count_sweep");
    group.sample_size(10);
    for n in [7usize, 15, 31] {
        let config = AttackConfig {
            candidates: n,
            ..profile.attack.clone()
        };
        group.bench_with_input(BenchmarkId::new("select", n), &view, |b, view| {
            b.iter(|| select_candidates(view, &config))
        });
    }
    group.finish();
}

fn bench_image_resolution(c: &mut Criterion) {
    let profile = Profile::fast();
    let design = implement_benchmark(&profile, Benchmark::C432, 91);
    let view = split_design(&design, Layer(3));
    let sink = view.sinks[0];
    let vp = view.fragment(sink).virtual_pins[0];
    let mut group = c.benchmark_group("image_resolution_sweep");
    group.sample_size(10);
    for px in [9usize, 17, 33, 99] {
        let config = AttackConfig {
            image_px: px,
            ..AttackConfig::paper()
        };
        let extractor = ImageExtractor::new(&view, &config);
        group.bench_with_input(BenchmarkId::new("render", px), &extractor, |b, ex| {
            b.iter(|| ex.render(sink, vp))
        });
    }
    group.finish();
}

fn bench_flow_slack(c: &mut Criterion) {
    let profile = Profile::fast();
    let design = implement_benchmark(&profile, Benchmark::C432, 92);
    let view = split_design(&design, Layer(3));
    let mut group = c.benchmark_group("flow_cap_slack_sweep");
    group.sample_size(10);
    for slack in [0.0f64, 0.25, 1e6] {
        let config = FlowAttackConfig {
            cap_slack: slack,
            ..FlowAttackConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("flow", format!("{slack}")),
            &view,
            |b, view| {
                b.iter(|| network_flow_attack(view, &design.netlist, &design.library, &config))
            },
        );
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let lib = CellLibrary::nangate45();
    let nl = generate_with(Benchmark::C880, 1.0, 93, &lib);
    let fp = Floorplan::for_netlist(&nl, &lib, 0.7, 1.0);
    let mut group = c.benchmark_group("physical_design_substrate");
    group.sample_size(10);
    group.bench_function("placement_c880", |b| {
        b.iter(|| place(&nl, &lib, &fp, &PlacerConfig::default()))
    });
    let placement = place(&nl, &lib, &fp, &PlacerConfig::default());
    group.bench_function("routing_c880", |b| {
        b.iter(|| route(&nl, &lib, &fp, &placement, &RouterConfig::default()))
    });
    let design = Design::implement(nl.clone(), lib.clone(), &ImplementConfig::default());
    group.bench_function("split_m3_c880", |b| {
        b.iter(|| split_design(&design, Layer(3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_sweep,
    bench_image_resolution,
    bench_flow_slack,
    bench_substrate
);
criterion_main!(benches);
