//! Engine-level invariants: a fixed spec is bit-deterministic, the model
//! store amortises training (warm runs perform zero epochs yet reproduce
//! byte-identical artifacts), shards reassemble to the unsharded matrix,
//! and resumed runs skip completed cells.

use deepsplit_core::config::AttackConfig;
use deepsplit_core::store::{DiskModelStore, MemoryModelStore};
use deepsplit_defense::eval::EvalConfig;
use deepsplit_defense::sweep::SweepConfig;
use deepsplit_defense::DefenseKind;
use deepsplit_engine::{
    merge_artifacts, protocol_fingerprint, run, sweep, EngineConfig, MatrixReport,
};
use deepsplit_layout::geom::Layer;
use deepsplit_netlist::benchmarks::Benchmark;
use std::path::PathBuf;

fn tiny_eval() -> EvalConfig {
    EvalConfig {
        attack: AttackConfig {
            use_images: false,
            candidates: 8,
            epochs: 5,
            batch_size: 16,
            threads: 2,
            ..AttackConfig::fast()
        },
        scale: 0.4,
        train_benchmarks: vec![Benchmark::C880],
        recovery_rounds: 6,
        train_query_cap: 150,
        ..EvalConfig::fast()
    }
}

fn tiny_sweep(kinds: Vec<DefenseKind>, strengths: Vec<f64>) -> SweepConfig {
    SweepConfig {
        eval: tiny_eval(),
        kinds,
        strengths,
        benchmarks: vec![Benchmark::C432],
        split_layers: vec![Layer(3)],
        defense_seed: 11,
        threads: 2,
        shard: (0, 1),
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deepsplit-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_store_skips_training_and_reproduces_bit_identical_results() {
    let config = tiny_sweep(vec![DefenseKind::Lift], vec![1.0]);
    let engine_config = EngineConfig::new(config.clone());
    let store = MemoryModelStore::new();

    let cold = run(&engine_config, &store).expect("cold run");
    assert_eq!(cold.stats.cells_total, 2);
    assert_eq!(cold.stats.models_trained, 2, "two distinct corpora");
    assert!(cold.stats.epochs_trained > 0);
    assert_eq!(cold.stats.store.misses, 2);
    assert!(cold.is_full());

    // Same store, same spec: everything resolves from cache…
    let warm = run(&engine_config, &store).expect("warm run");
    assert_eq!(warm.stats.models_trained, 0, "warm run must not train");
    assert_eq!(warm.stats.epochs_trained, 0);
    assert_eq!(warm.stats.store.hits, 2);
    assert_eq!(warm.stats.store.misses, 0);
    // …and same fingerprint → bit-identical scores and artifact bytes.
    assert_eq!(cold.outcomes(), warm.outcomes());
    assert_eq!(
        MatrixReport::new(cold.outcomes()).to_json().expect("json"),
        MatrixReport::new(warm.outcomes()).to_json().expect("json")
    );

    // A fresh store retrains but lands on the same bits: the sweep itself is
    // deterministic for a fixed spec.
    assert_eq!(sweep(&config), cold.outcomes());

    // Baseline row first, and the report round-trips.
    let outcomes = cold.outcomes();
    assert_eq!(outcomes[0].defense.kind, DefenseKind::None);
    let report = MatrixReport::new(outcomes);
    assert_eq!(
        MatrixReport::from_json(&report.to_json().expect("json")).unwrap(),
        report
    );
}

#[test]
fn disk_store_amortises_across_instances() {
    // Baseline-only matrix: one cell, one model.
    let config = tiny_sweep(vec![], vec![]);
    let engine_config = EngineConfig::new(config);
    let dir = tempdir("store");

    let cold_store = DiskModelStore::open(&dir).unwrap();
    let cold = run(&engine_config, &cold_store).expect("cold run");
    assert_eq!(cold.stats.models_trained, 1);

    // A fresh store instance on the same directory stands in for a second
    // process (or a later run): zero epochs, byte-identical artifact.
    let warm_store = DiskModelStore::open(&dir).unwrap();
    let warm = run(&engine_config, &warm_store).expect("warm run");
    assert_eq!(warm.stats.epochs_trained, 0);
    assert_eq!(warm.stats.store.hits, 1);
    assert_eq!(
        MatrixReport::new(cold.outcomes()).to_json().expect("json"),
        MatrixReport::new(warm.outcomes()).to_json().expect("json"),
        "a JSON-round-tripped model must reproduce exact scores"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_runs_merge_to_the_unsharded_matrix() {
    let mut config = tiny_sweep(vec![DefenseKind::Lift], vec![0.5, 1.0]);
    let store = MemoryModelStore::new();

    let unsharded = run(&EngineConfig::new(config.clone()), &store).expect("unsharded run");
    assert_eq!(unsharded.stats.cells_total, 3);

    let dir = tempdir("shards");
    for index in 0..2 {
        config.shard = (index, 2);
        let shard_run = run(
            &EngineConfig {
                sweep: config.clone(),
                artifacts_dir: Some(dir.clone()),
                resume: false,
                record_timings: false,
            },
            &store,
        )
        .expect("shard run");
        assert!(!shard_run.is_full());
        assert_eq!(shard_run.stats.cells_in_shard, 2 - index);
        assert_eq!(
            shard_run.stats.epochs_trained, 0,
            "shards share the unsharded run's store"
        );
    }

    config.shard = (0, 1);
    let merged = merge_artifacts(&dir, &config.cells(), protocol_fingerprint(&config))
        .expect("all shards ran");
    assert_eq!(
        merged,
        unsharded.outcomes(),
        "merged == unsharded, in order"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_skips_completed_cells() {
    // Camouflage is the one defense that edits the netlist itself, so using
    // it here also proves a follow-on defense round-trips the engine's
    // artifact + resume path unchanged.
    let config = tiny_sweep(vec![DefenseKind::Camouflage], vec![1.0]);
    let dir = tempdir("resume");
    let store = MemoryModelStore::new();
    let engine_config = EngineConfig {
        sweep: config,
        artifacts_dir: Some(dir.clone()),
        resume: true,
        record_timings: false,
    };

    // Nothing to resume yet: evaluates and publishes artifacts.
    let first = run(&engine_config, &store).expect("first run");
    assert_eq!(first.stats.cells_resumed, 0);
    assert_eq!(first.stats.cells_in_shard, 2);

    // Second run finds every cell on disk: no training, no store traffic,
    // identical results.
    let resumed = run(&engine_config, &store).expect("resumed run");
    assert_eq!(resumed.stats.cells_resumed, 2);
    assert_eq!(resumed.stats.epochs_trained, 0);
    assert_eq!(resumed.stats.store, Default::default());
    assert_eq!(resumed.outcomes(), first.outcomes());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn broken_artifacts_dir_reports_the_path_instead_of_panicking() {
    // A regular file where the artifacts directory should be: creation
    // fails, and the error must carry the offending path so a sharded
    // worker's crash report says what to fix.
    let blocker = tempdir("blocked");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let engine_config = EngineConfig {
        sweep: tiny_sweep(vec![], vec![]),
        artifacts_dir: Some(blocker.clone()),
        resume: false,
        record_timings: false,
    };
    let err = run(&engine_config, &MemoryModelStore::new())
        .expect_err("a blocked artifacts directory must fail the run");
    let message = err.to_string();
    assert!(
        message.contains("create artifacts directory"),
        "error must say what failed: {message}"
    );
    assert!(
        message.contains(&blocker.display().to_string()),
        "error must name the path: {message}"
    );
    std::fs::remove_file(&blocker).unwrap();
}

#[test]
fn timings_are_telemetry_only_and_never_reach_the_report() {
    let config = tiny_sweep(vec![DefenseKind::Lift], vec![1.0]);
    let store = MemoryModelStore::new();
    let dir = tempdir("timings");

    // Untimed baseline.
    let plain = run(&EngineConfig::new(config.clone()), &store).expect("plain run");
    assert!(plain.timings.is_empty(), "timings are opt-in");
    assert_eq!(plain.render_timings(), "");

    // Timed run against the now-warm store, with artifacts.
    let timed = run(
        &EngineConfig {
            sweep: config.clone(),
            artifacts_dir: Some(dir.clone()),
            resume: false,
            record_timings: true,
        },
        &store,
    )
    .expect("timed run");
    assert_eq!(timed.timings.len(), 2, "one breakdown per evaluated cell");
    for (index, t) in &timed.timings {
        assert!(timed.cells.iter().any(|c| c.index == *index));
        assert!(t.attack_ms > 0.0, "attack phase always runs");
        assert!(t.publish_ms > 0.0, "artifacts were written");
        // Warm store: neither corpus generation nor training happened.
        assert_eq!(t.corpus_ms, 0.0);
        assert_eq!(t.train_ms, 0.0);
    }
    let table = timed.render_timings();
    assert!(table.contains("attack_ms") && table.contains("total"));
    assert!(table.contains("c432"));

    // The determinism contract: identical scores, byte-identical report.
    assert_eq!(plain.outcomes(), timed.outcomes());
    assert_eq!(
        MatrixReport::new(plain.outcomes()).to_json().expect("json"),
        MatrixReport::new(timed.outcomes()).to_json().expect("json"),
        "a timed run's --json artifact must be byte-identical to an untimed one's"
    );

    // Timed artifacts resume exactly like untimed ones, and a cold timed run
    // attributes corpus+train cost to the first cell per fingerprint.
    let resumed = run(
        &EngineConfig {
            sweep: config.clone(),
            artifacts_dir: Some(dir.clone()),
            resume: true,
            record_timings: true,
        },
        &store,
    )
    .expect("resumed run");
    assert_eq!(resumed.stats.cells_resumed, 2);
    assert!(
        resumed.timings.is_empty(),
        "resumed cells report no timings"
    );
    assert_eq!(resumed.outcomes(), timed.outcomes());
    std::fs::remove_dir_all(&dir).unwrap();

    let cold = run(
        &EngineConfig {
            sweep: config,
            artifacts_dir: None,
            resume: false,
            record_timings: true,
        },
        &MemoryModelStore::new(),
    )
    .expect("cold timed run");
    assert!(
        cold.timings.iter().any(|(_, t)| t.train_ms > 0.0),
        "a cold run must attribute training cost"
    );
    assert!(cold.timings.iter().any(|(_, t)| t.corpus_ms > 0.0));
    assert_eq!(cold.outcomes(), plain.outcomes());
}
