//! The matrix lifecycle: shard selection → resume → model resolution →
//! attack evaluation → artifact publication.
//!
//! Execution is split into two phases with different economics:
//!
//! 1. **Model resolution.** Every pending cell's corpus fingerprint is
//!    computed; one model per *unique* fingerprint is resolved through the
//!    [`ModelStore`] — loaded on a hit, trained (and stored) on a miss.
//!    Cells sharing a corpus share one training run, and repeated sweeps
//!    against a disk store skip training entirely. Training always runs
//!    with one inner thread: gradient-accumulation order depends on the
//!    thread count, so a cacheable model must be trained identically
//!    regardless of matrix shape, shard count or machine.
//! 2. **Attack evaluation.** Each cell defends its victim and runs all
//!    three attackers with the resolved model. Inference is thread-count
//!    invariant, so the thread budget left over by the fan-out
//!    ([`split_budget`]) flows into per-cell inference — cells resolved
//!    from cache are no longer forced onto a single thread.
//!
//! Both phases preserve cell order, so a run is bit-deterministic for a
//! fixed spec: cold, warm (cached), resumed and sharded-then-merged runs
//! all produce identical [`EvalOutcome`]s.

use crate::artifacts::{self, CellTimings, EngineError};
use crate::pareto::ParetoFront;
use deepsplit_core::fingerprint::CorpusFingerprint;
use deepsplit_core::store::{MemoryModelStore, ModelStore, StoreCounters};
use deepsplit_core::train::{self, TrainedAttack};
use deepsplit_defense::eval::{
    attack_cell, corpus_fingerprint, defended_corpus, EvalBase, EvalOutcome,
};
use deepsplit_defense::service::canonical_train_eval;
use deepsplit_defense::sweep::{Cell, SweepConfig};
use deepsplit_netlist::benchmarks::Benchmark;
use deepsplit_nn::parallel::{default_threads, parallel_map, split_budget};
use deepsplit_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// Full configuration of one engine invocation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The matrix spec, including the shard this process evaluates.
    pub sweep: SweepConfig,
    /// Where to publish per-cell artifacts (and to look for resumable ones).
    pub artifacts_dir: Option<PathBuf>,
    /// Reuse matching artifacts from `artifacts_dir` instead of
    /// re-evaluating their cells.
    pub resume: bool,
    /// Collect per-cell wall-clock breakdowns ([`CellTimings`]): stamped
    /// into artifacts and returned in [`MatrixRun::timings`]. Telemetry
    /// only — never hashed into the protocol fingerprint and never part of
    /// the `--json` report, so a timed run's gated outputs are
    /// byte-identical to an untimed one's.
    pub record_timings: bool,
}

impl EngineConfig {
    /// Plain in-process run of `sweep`: no artifacts, no resume, no timings.
    pub fn new(sweep: SweepConfig) -> EngineConfig {
        EngineConfig {
            sweep,
            artifacts_dir: None,
            resume: false,
            record_timings: false,
        }
    }
}

/// One evaluated cell, tagged with its global matrix index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Index into [`SweepConfig::cells`].
    pub index: usize,
    /// The cell's evaluation result.
    pub outcome: EvalOutcome,
}

/// What one engine invocation did — the cache-effectiveness ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Cells in the full matrix.
    pub cells_total: usize,
    /// Cells assigned to this shard.
    pub cells_in_shard: usize,
    /// Cells reloaded from artifacts instead of evaluated.
    pub cells_resumed: usize,
    /// Models actually trained (unique corpus fingerprints missing from the
    /// store).
    pub models_trained: usize,
    /// Training epochs performed — `0` on a fully warm store.
    pub epochs_trained: usize,
    /// Store hit/miss/save counters accumulated by this run.
    pub store: StoreCounters,
}

impl RunStats {
    /// One-line human/CI-greppable summary.
    pub fn summary(&self) -> String {
        format!(
            "cells: {}/{} in shard, {} resumed; store: {} hits, {} misses; trained {} models ({} epochs)",
            self.cells_in_shard,
            self.cells_total,
            self.cells_resumed,
            self.store.hits,
            self.store.misses,
            self.models_trained,
            self.epochs_trained,
        )
    }
}

/// The outcome of one engine invocation: this shard's cells (in global cell
/// order) plus the run ledger.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Evaluated (or resumed) cells, sorted by global index.
    pub cells: Vec<CellResult>,
    /// What it cost.
    pub stats: RunStats,
    /// Per-cell wall-clock breakdowns (global index → timings), sorted by
    /// index. Populated only for freshly evaluated cells of a run with
    /// [`EngineConfig::record_timings`]; resumed cells cost nothing and
    /// report nothing.
    pub timings: Vec<(usize, CellTimings)>,
}

impl MatrixRun {
    /// Whether this run covers the whole matrix (single-shard run).
    pub fn is_full(&self) -> bool {
        self.cells.len() == self.stats.cells_total
    }

    /// The outcomes in cell order.
    pub fn outcomes(&self) -> Vec<EvalOutcome> {
        self.cells.iter().map(|c| c.outcome.clone()).collect()
    }

    /// Renders the `--timings` summary table: one row per timed cell plus a
    /// phase-total footer. Empty string when no timings were recorded.
    pub fn render_timings(&self) -> String {
        if self.timings.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6}  {:<10} {:>5}  {:<10} {:>10}  {:>10}  {:>10}  {:>10}\n",
            "cell",
            "benchmark",
            "layer",
            "defense",
            "corpus_ms",
            "train_ms",
            "attack_ms",
            "publish_ms"
        ));
        let mut total = CellTimings::default();
        for (index, t) in &self.timings {
            let labels = self
                .cells
                .iter()
                .find(|c| c.index == *index)
                .map(|c| {
                    (
                        c.outcome.benchmark.clone(),
                        c.outcome.split_layer,
                        c.outcome.defense.kind.name().to_string(),
                    )
                })
                .unwrap_or_else(|| ("?".to_string(), 0, "?".to_string()));
            out.push_str(&format!(
                "{:>6}  {:<10} {:>5}  {:<10} {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}\n",
                index,
                labels.0,
                labels.1,
                labels.2,
                t.corpus_ms,
                t.train_ms,
                t.attack_ms,
                t.publish_ms
            ));
            total.corpus_ms += t.corpus_ms;
            total.train_ms += t.train_ms;
            total.attack_ms += t.attack_ms;
            total.publish_ms += t.publish_ms;
        }
        out.push_str(&format!(
            "{:>6}  {:<10} {:>5}  {:<10} {:>10.1}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            "total", "", "", "", total.corpus_ms, total.train_ms, total.attack_ms, total.publish_ms
        ));
        out
    }
}

/// The stable `--json` regression artifact: full matrix results plus their
/// CCR-vs-overhead Pareto fronts. Byte-identical across cold, cached,
/// resumed and sharded-then-merged runs of the same spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Every cell, in [`SweepConfig::cells`] order.
    pub results: Vec<EvalOutcome>,
    /// Per-`(benchmark, layer)` Pareto fronts over the results.
    pub pareto: ParetoFront,
}

impl MatrixReport {
    /// Builds the report (computing the Pareto fronts) from full results.
    pub fn new(results: Vec<EvalOutcome>) -> MatrixReport {
        let pareto = ParetoFront::compute(&results);
        MatrixReport { results, pareto }
    }

    /// The canonical pretty-JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError::Serialize`] when the report cannot be
    /// encoded.
    pub fn to_json(&self) -> Result<String, EngineError> {
        serde_json::to_string_pretty(self).map_err(|source| EngineError::Serialize {
            what: "matrix report",
            source,
        })
    }

    /// Parses [`MatrixReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns any serde error.
    pub fn from_json(s: &str) -> serde_json::Result<MatrixReport> {
        serde_json::from_str(s)
    }
}

/// Runs `config`'s shard of the matrix through `store`.
///
/// # Errors
///
/// Returns an [`EngineError`] naming the path involved when the artifacts
/// directory cannot be created or a completed cell's artifact cannot be
/// published — a sharded worker dying on I/O should say *which* path to
/// fix, not unwind the whole process with a bare panic.
///
/// # Panics
///
/// Panics on an invalid shard spec and on an empty training corpus (as
/// [`EvalBase::build`]).
pub fn run(config: &EngineConfig, store: &dyn ModelStore) -> Result<MatrixRun, EngineError> {
    let cells_total = config.sweep.cells().len();
    let selected = config.sweep.shard_cells();
    let cells_in_shard = selected.len();
    let threads = if config.sweep.threads == 0 {
        default_threads()
    } else {
        config.sweep.threads
    };

    if let Some(dir) = &config.artifacts_dir {
        std::fs::create_dir_all(dir).map_err(|source| EngineError::CreateArtifactsDir {
            path: dir.clone(),
            source,
        })?;
    }
    let protocol = artifacts::protocol_fingerprint(&config.sweep);

    // Resume whatever matching artifacts already exist.
    let mut results: Vec<CellResult> = Vec::with_capacity(cells_in_shard);
    let mut pending: Vec<(usize, Cell)> = Vec::new();
    for (index, cell) in selected {
        let prior = match &config.artifacts_dir {
            Some(dir) if config.resume => {
                artifacts::load_artifact(dir, index, cells_total, protocol, &cell)
            }
            _ => None,
        };
        match prior {
            Some(outcome) => results.push(CellResult { index, outcome }),
            None => pending.push((index, cell)),
        }
    }
    let cells_resumed = results.len();
    let counters_before = store.counters();

    // Canonical training config: see the module docs on why inner training
    // parallelism is pinned to one thread. The same canonicalisation is used
    // by the serving layer, so sweep shards and `POST /attack` requests
    // resolve identical cells to identical store keys.
    let train_eval = canonical_train_eval(&config.sweep.eval);

    // One base implementation per benchmark still pending.
    let mut benches: Vec<Benchmark> = Vec::new();
    for (_, cell) in &pending {
        if !benches.contains(&cell.0) {
            benches.push(cell.0);
        }
    }
    let bases: Vec<EvalBase> = parallel_map(&benches, threads.min(benches.len().max(1)), |&b| {
        EvalBase::build(b, &config.sweep.eval)
    });
    let base_of = |bench: Benchmark| -> &EvalBase {
        bases
            .iter()
            .find(|b| b.benchmark == bench)
            // splint::allow(P1, "bases are built from exactly the benchmarks of `pending` above; a miss is a driver bug that must abort the sweep")
            .expect("base built for every pending benchmark")
    };

    // Phase 1: resolve one model per unique corpus fingerprint.
    let mut fps: Vec<CorpusFingerprint> = Vec::with_capacity(pending.len());
    let mut unique: Vec<(CorpusFingerprint, Cell)> = Vec::new();
    for (_, cell) in &pending {
        let fp = corpus_fingerprint(cell.0, cell.1, &cell.2, &train_eval);
        if !unique.iter().any(|(seen, _)| *seen == fp) {
            unique.push((fp, cell.clone()));
        }
        fps.push(fp);
    }
    let record_timings = config.record_timings;
    // (fingerprint, model, epochs-if-trained, (corpus_ms, train_ms)).
    type Resolved = (CorpusFingerprint, TrainedAttack, Option<usize>, (f64, f64));
    let resolved: Vec<Resolved> =
        parallel_map(&unique, threads.min(unique.len().max(1)), |(fp, cell)| {
            let fp = *fp;
            let base = base_of(cell.0);
            let _resolve_span = obs::span("engine.resolve");
            let corpus_ms = std::cell::Cell::new(0.0);
            let resolve_started = record_timings.then(Instant::now);
            let (model, report) = train::train_or_load(&fp, store, &train_eval.attack, || {
                let _span = obs::span("engine.corpus");
                let started = record_timings.then(Instant::now);
                let corpus = defended_corpus(base, cell.1, &cell.2, &train_eval);
                if let Some(s) = started {
                    corpus_ms.set(s.elapsed().as_secs_f64() * 1000.0);
                }
                corpus
            });
            let resolve_ms = resolve_started
                .map(|s| s.elapsed().as_secs_f64() * 1000.0)
                .unwrap_or(0.0);
            // Training cost only exists when this run actually trained;
            // on a store hit `resolve_ms` is just the load, not training.
            let train_ms = if report.is_some() {
                (resolve_ms - corpus_ms.get()).max(0.0)
            } else {
                0.0
            };
            let phase1 = (corpus_ms.get(), train_ms);
            (fp, model, report.map(|r| r.epoch_loss.len()), phase1)
        });
    let models_trained = resolved.iter().filter(|(_, _, e, _)| e.is_some()).count();
    let epochs_trained = resolved.iter().filter_map(|(_, _, e, _)| *e).sum();
    // Phase-1 cost lands on the first cell per unique fingerprint (lookups
    // only — splint D1 bans iterating these maps).
    let phase1_of: HashMap<CorpusFingerprint, (f64, f64)> = resolved
        .iter()
        .map(|(fp, _, _, phase1)| (*fp, *phase1))
        .collect();
    let models: HashMap<CorpusFingerprint, TrainedAttack> = resolved
        .into_iter()
        .map(|(fp, model, _, _)| (fp, model))
        .collect();

    // Phase 2: attack every pending cell, spending the spare thread budget
    // on per-cell inference.
    let plan = split_budget(pending.len(), threads);
    // Phase-1 cost is attributed to the first cell per unique fingerprint —
    // the cell whose corpus the training run actually materialised.
    let mut seen_fps: Vec<CorpusFingerprint> = Vec::new();
    let jobs: Vec<(usize, Cell, CorpusFingerprint, bool)> = pending
        .into_iter()
        .zip(fps)
        .map(|((index, cell), fp)| {
            let first = !seen_fps.contains(&fp);
            if first {
                seen_fps.push(fp);
            }
            (index, cell, fp, first)
        })
        .collect();
    let fresh: Vec<Result<(CellResult, Option<CellTimings>), EngineError>> =
        parallel_map(&jobs, plan.outer, |(index, cell, fp, first)| {
            let base = base_of(cell.0);
            let model = models
                .get(fp)
                .ok_or(EngineError::MissingModel { cell: *index })?;
            let attack_started = record_timings.then(Instant::now);
            let outcome = {
                let _span = obs::span("engine.attack");
                attack_cell(base, cell.1, &cell.2, &config.sweep.eval, model, plan.inner)
            };
            let attack_ms = attack_started
                .map(|s| s.elapsed().as_secs_f64() * 1000.0)
                .unwrap_or(0.0);
            let mut timings = record_timings.then(|| {
                let (corpus_ms, train_ms) = if *first {
                    phase1_of.get(fp).copied().unwrap_or((0.0, 0.0))
                } else {
                    (0.0, 0.0)
                };
                CellTimings {
                    corpus_ms,
                    train_ms,
                    attack_ms,
                    publish_ms: 0.0,
                }
            });
            if let Some(dir) = &config.artifacts_dir {
                let publish_started = record_timings.then(Instant::now);
                {
                    let _span = obs::span("engine.publish");
                    artifacts::write_artifact(
                        dir,
                        *index,
                        cells_total,
                        protocol,
                        &outcome,
                        timings,
                    )?;
                }
                if let (Some(t), Some(s)) = (timings.as_mut(), publish_started) {
                    t.publish_ms = s.elapsed().as_secs_f64() * 1000.0;
                }
            }
            Ok((
                CellResult {
                    index: *index,
                    outcome,
                },
                timings,
            ))
        });
    let mut timings: Vec<(usize, CellTimings)> = Vec::new();
    for cell in fresh {
        let (result, timing) = cell?;
        if let Some(t) = timing {
            timings.push((result.index, t));
        }
        results.push(result);
    }
    results.sort_by_key(|c| c.index);
    timings.sort_by_key(|(index, _)| *index);

    let counters_after = store.counters();
    Ok(MatrixRun {
        cells: results,
        timings,
        stats: RunStats {
            cells_total,
            cells_in_shard,
            cells_resumed,
            models_trained,
            epochs_trained,
            store: StoreCounters {
                hits: counters_after.hits - counters_before.hits,
                misses: counters_after.misses - counters_before.misses,
                saves: counters_after.saves - counters_before.saves,
            },
        },
    })
}

/// Convenience single-process sweep: runs `config`'s shard against a fresh
/// in-memory store (cells sharing a corpus still share one training run)
/// and returns the outcomes in cell order.
pub fn sweep(config: &SweepConfig) -> Vec<EvalOutcome> {
    let store = MemoryModelStore::new();
    run(&EngineConfig::new(config.clone()), &store)
        // splint::allow(P1, "an in-memory sweep writes no artifacts, so the only run() error sources cannot fire")
        .expect("in-memory sweep writes no artifacts, so it cannot fail on I/O")
        .outcomes()
}
