//! CCR-vs-PPA Pareto fronts: the regression artifact tracked across PRs.
//!
//! Every matrix cell is a point in the (attacker success, defender cost)
//! plane: DL CCR on one axis, combined routed-cost overhead on the other —
//! both minimised (a defender wants a cheap defense that blinds the attack).
//! The front keeps exactly the cells no other cell beats on both axes, per
//! `(benchmark, split layer)` group, so a PR that regresses either a defense
//! or the attack moves a stable, diffable JSON artifact instead of a wall of
//! matrix rows.

use deepsplit_defense::eval::EvalOutcome;
use serde::{Deserialize, Serialize};

/// One non-dominated cell of a [`ParetoGroup`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Defense kind name (`"none"` for the baseline row).
    pub defense: String,
    /// Defense strength.
    pub strength: f64,
    /// DL attack CCR in `[0, 1]` — minimised.
    pub dl_ccr: f64,
    /// Combined routed-cost overhead in percent — minimised.
    pub cost_overhead_pct: f64,
}

/// The front of one `(benchmark, split layer)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoGroup {
    /// Victim benchmark name.
    pub benchmark: String,
    /// Split layer.
    pub split_layer: u8,
    /// Non-dominated points, sorted by ascending cost (and descending CCR —
    /// a valid front is monotone).
    pub points: Vec<ParetoPoint>,
}

/// CCR-vs-overhead Pareto fronts for a full matrix, grouped per
/// `(benchmark, split layer)` in first-appearance order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront {
    /// One group per `(benchmark, split layer)` pair of the input.
    pub groups: Vec<ParetoGroup>,
}

/// `a` dominates `b` when it is at least as good on both minimised axes and
/// strictly better on one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the non-dominated points of `points` (each `(x, y)`, both
/// minimised), sorted by ascending `x` then ascending `y` then index.
pub fn front_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| !points.iter().any(|&other| dominates(other, points[i])))
        .collect();
    front.sort_by(|&i, &j| {
        points[i]
            .0
            .total_cmp(&points[j].0)
            .then(points[i].1.total_cmp(&points[j].1))
            .then(i.cmp(&j))
    });
    front
}

impl ParetoFront {
    /// Computes the per-`(benchmark, layer)` fronts of a matrix.
    pub fn compute(results: &[EvalOutcome]) -> ParetoFront {
        let mut groups: Vec<ParetoGroup> = Vec::new();
        for r in results {
            if !groups
                .iter()
                .any(|g| g.benchmark == r.benchmark && g.split_layer == r.split_layer)
            {
                groups.push(ParetoGroup {
                    benchmark: r.benchmark.clone(),
                    split_layer: r.split_layer,
                    points: Vec::new(),
                });
            }
        }
        for group in &mut groups {
            let members: Vec<&EvalOutcome> = results
                .iter()
                .filter(|r| r.benchmark == group.benchmark && r.split_layer == group.split_layer)
                .collect();
            let coords: Vec<(f64, f64)> = members
                .iter()
                .map(|r| (r.defense.cost_overhead_pct(), r.scores.dl_ccr))
                .collect();
            group.points = front_indices(&coords)
                .into_iter()
                .map(|i| ParetoPoint {
                    defense: members[i].defense.kind.name().to_string(),
                    strength: members[i].defense.strength,
                    dl_ccr: members[i].scores.dl_ccr,
                    cost_overhead_pct: coords[i].0,
                })
                .collect();
        }
        ParetoFront { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_is_strict() {
        assert!(dominates((0.0, 0.0), (1.0, 1.0)));
        assert!(dominates((0.0, 1.0), (0.0, 2.0)));
        assert!(!dominates((0.0, 0.0), (0.0, 0.0)), "equal points coexist");
        assert!(!dominates((0.0, 1.0), (1.0, 0.0)), "trade-offs coexist");
    }

    #[test]
    fn simple_front() {
        // (cost, ccr): the cheap-and-blind point and the free baseline
        // survive; the expensive-and-leaky point is dominated.
        let points = vec![(0.0, 0.9), (10.0, 0.1), (20.0, 0.5)];
        assert_eq!(front_indices(&points), vec![0, 1]);
    }

    proptest! {
        #[test]
        fn no_dominated_point_survives(
            coords in proptest::collection::vec((0.0f64..50.0, 0.0f64..1.0), 1..40)
        ) {
            let front = front_indices(&coords);
            prop_assert!(!front.is_empty(), "a nonempty set has a front");
            // Nothing on the front is dominated by anything in the input.
            for &i in &front {
                for (j, &other) in coords.iter().enumerate() {
                    prop_assert!(
                        !dominates(other, coords[i]),
                        "front point {i} {:?} dominated by {j} {:?}",
                        coords[i],
                        other
                    );
                }
            }
            // Everything off the front is dominated by something on it.
            for j in 0..coords.len() {
                if !front.contains(&j) {
                    prop_assert!(
                        front.iter().any(|&i| dominates(coords[i], coords[j])),
                        "off-front point {j} {:?} not dominated",
                        coords[j]
                    );
                }
            }
            // The front is monotone: cost ascends, CCR descends (ties allowed).
            for w in front.windows(2) {
                prop_assert!(coords[w[0]].0 <= coords[w[1]].0);
                prop_assert!(coords[w[0]].1 >= coords[w[1]].1);
            }
        }
    }
}
