//! # deepsplit-engine
//!
//! The sweep **engine**: owns the full lifecycle of the attack-vs-defense
//! matrix that `deepsplit-defense` specifies — production-scale execution of
//! the defense × strength × benchmark × split-layer grid.
//!
//! * **Content-addressed model store** — every cell's training corpus gets a
//!   stable 128-bit fingerprint ([`deepsplit_core::fingerprint`]); trained
//!   models are cached in memory or on disk keyed by that fingerprint
//!   ([`deepsplit_core::store`]), so cells sharing a corpus — and entire
//!   repeated sweeps — skip training.
//! * **Shard-aware execution** — the matrix partitions across processes or
//!   machines via [`deepsplit_defense::sweep::SweepConfig::shard`];
//!   completed cells publish resumable
//!   JSON artifacts ([`artifacts`]), and [`merge_artifacts`] reassembles the
//!   full matrix from any combination of shard runs.
//! * **Pareto regression artifacts** — [`MatrixReport`] pairs the full
//!   results with their CCR-vs-PPA-overhead fronts ([`pareto`]), stable and
//!   byte-identical across cold, cached, resumed and sharded runs.
//!
//! ```no_run
//! use deepsplit_core::store::DiskModelStore;
//! use deepsplit_defense::sweep::SweepConfig;
//! use deepsplit_engine::{run, EngineConfig, MatrixReport};
//!
//! let mut config = EngineConfig::new(SweepConfig::fast());
//! config.sweep.shard = (0, 2); // this process: every even cell
//! config.artifacts_dir = Some("matrix-artifacts".into());
//! config.resume = true;        // pick up where an interrupted run stopped
//!
//! let store = DiskModelStore::open("model-store").unwrap();
//! let shard = run(&config, &store).expect("artifact directory is writable");
//! eprintln!("{}", shard.stats.summary());
//!
//! // Once every shard has run (possibly on other machines):
//! let full = deepsplit_engine::merge_artifacts(
//!     std::path::Path::new("matrix-artifacts"),
//!     &config.sweep.cells(),
//!     deepsplit_engine::artifacts::protocol_fingerprint(&config.sweep),
//! )
//! .unwrap();
//! println!("{}", MatrixReport::new(full).to_json().expect("serialise report"));
//! ```

pub mod artifacts;
pub mod pareto;
pub mod run;

pub use artifacts::{
    merge_artifacts, protocol_fingerprint, CellArtifact, CellTimings, EngineError,
};
pub use pareto::{ParetoFront, ParetoGroup, ParetoPoint};
pub use run::{run, sweep, CellResult, EngineConfig, MatrixReport, MatrixRun, RunStats};

// The engine's key abstractions live in `deepsplit-core` so `core::train`
// can thread the store through training; re-exported here for callers that
// only know the engine.
pub use deepsplit_core::fingerprint::CorpusFingerprint;
pub use deepsplit_core::store::{DiskModelStore, MemoryModelStore, ModelStore, StoreCounters};
