//! Resumable per-cell JSON artifacts.
//!
//! Every completed cell is published as `cell-<index>.json` in the run's
//! artifact directory (atomically: temp file + rename, so concurrent shards
//! may share one directory). A `--resume` run reloads whatever is already
//! there instead of re-evaluating, and the merge step reassembles the full
//! matrix from any combination of shard runs.

use deepsplit_core::fingerprint::{CorpusFingerprint, StableHasher};
use deepsplit_core::store::try_atomic_publish;
use deepsplit_defense::eval::EvalOutcome;
use deepsplit_defense::sweep::{Cell, SweepConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Why an engine invocation failed. Every variant names the path (or value)
/// involved, so a worker failing deep inside a sharded sweep reports *what*
/// broke — not just that something panicked somewhere.
#[derive(Debug)]
pub enum EngineError {
    /// The artifacts directory could not be created.
    CreateArtifactsDir {
        /// The directory that was being created.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A completed cell's artifact could not be published.
    WriteArtifact {
        /// The artifact file that was being written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A report or artifact could not be serialised.
    Serialize {
        /// What was being serialised.
        what: &'static str,
        /// The underlying serde error.
        source: serde_json::Error,
    },
    /// A cell referenced a corpus fingerprint phase 1 never resolved — a
    /// driver bug, surfaced as an error instead of a worker panic.
    MissingModel {
        /// Matrix index of the affected cell.
        cell: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::CreateArtifactsDir { path, source } => {
                write!(f, "create artifacts directory {}: {source}", path.display())
            }
            EngineError::WriteArtifact { path, source } => {
                write!(f, "write cell artifact {}: {source}", path.display())
            }
            EngineError::Serialize { what, source } => {
                write!(f, "serialise {what}: {source}")
            }
            EngineError::MissingModel { cell } => {
                write!(
                    f,
                    "cell {cell}: no resolved model for its corpus fingerprint"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::CreateArtifactsDir { source, .. }
            | EngineError::WriteArtifact { source, .. } => Some(source),
            EngineError::Serialize { source, .. } => Some(source),
            EngineError::MissingModel { .. } => None,
        }
    }
}

/// Wall-clock breakdown of one evaluated cell, in milliseconds.
///
/// Pure telemetry: timings ride along in artifacts and the `--timings`
/// table but never enter [`protocol_fingerprint`], corpus fingerprints, or
/// the `--json` [`MatrixReport`](crate::run::MatrixReport) — a traced or
/// timed sweep must stay byte-identical to an untimed one on every
/// content-addressed or regression-gated output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CellTimings {
    /// Defended-corpus generation, attributed to the first cell per unique
    /// corpus fingerprint (`0.0` when the model came from the store).
    pub corpus_ms: f64,
    /// Training epochs, same attribution (`0.0` on a store hit).
    pub train_ms: f64,
    /// Attack evaluation (all three attackers on the defended victim).
    pub attack_ms: f64,
    /// Artifact publication. Measured around the atomic write, so it is
    /// `0.0` inside the artifact itself (which is sealed before its own
    /// publish completes) and only populated in the `--timings` summary.
    pub publish_ms: f64,
}

/// The on-disk form of one completed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellArtifact {
    /// Global index in [`SweepConfig::cells`].
    pub index: usize,
    /// Total cell count of the matrix the artifact belongs to.
    pub total: usize,
    /// The evaluation protocol the result was produced under
    /// ([`protocol_fingerprint`]); cell coordinates alone don't pin the
    /// scores.
    pub protocol: CorpusFingerprint,
    /// The cell's evaluation result.
    pub outcome: EvalOutcome,
    /// Wall-clock telemetry, when the producing run passed `--timings`.
    /// Ignored by resume/merge matching — timings are a side channel of the
    /// determinism contract, never part of a cell's identity.
    pub timings: Option<CellTimings>,
}

/// Stable identity of everything a cell's scores depend on *beyond* its
/// coordinates: the full evaluation protocol and the defense seed. Resuming
/// or merging only accepts artifacts stamped with the same protocol, so a
/// re-run with, say, `--images` (same matrix shape, different scores) can
/// never silently reuse vector-only results.
///
/// The attack thread count is canonicalised out: engine results are
/// thread-invariant (training is pinned, inference is order-preserving), so
/// a different thread budget must not orphan artifacts.
pub fn protocol_fingerprint(config: &SweepConfig) -> CorpusFingerprint {
    let mut eval = config.eval.clone();
    eval.attack.threads = 0;
    let mut h = StableHasher::new();
    h.write_str(&serde_json::to_string(&eval).expect("serialise eval config"));
    h.write_u64(config.defense_seed);
    h.finish()
}

fn artifact_name(index: usize) -> String {
    format!("cell-{index:06}.json")
}

/// The artifact path of cell `index`.
pub fn artifact_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(artifact_name(index))
}

/// Atomically publishes one completed cell (via
/// [`deepsplit_core::store::try_atomic_publish`]).
///
/// # Errors
///
/// Returns an [`EngineError`] naming the artifact path when serialisation or
/// the write fails — losing resume state silently would make an interrupted
/// run unrecoverable, and a bare panic would not say *which* path to fix.
pub fn write_artifact(
    dir: &Path,
    index: usize,
    total: usize,
    protocol: CorpusFingerprint,
    outcome: &EvalOutcome,
    timings: Option<CellTimings>,
) -> Result<(), EngineError> {
    let artifact = CellArtifact {
        index,
        total,
        protocol,
        outcome: outcome.clone(),
        timings,
    };
    let json =
        serde_json::to_string_pretty(&artifact).map_err(|source| EngineError::Serialize {
            what: "cell artifact",
            source,
        })?;
    try_atomic_publish(dir, &artifact_name(index), &json).map_err(|source| {
        EngineError::WriteArtifact {
            path: artifact_path(dir, index),
            source,
        }
    })
}

/// Loads cell `index` if a valid artifact for exactly this
/// `(matrix, protocol, cell)` exists. A missing, unparsable or mismatched
/// artifact (different matrix size, evaluation protocol, benchmark, layer,
/// defense kind or strength — e.g. left over from a differently-configured
/// sweep in the same directory) returns `None`, and the cell is simply
/// re-evaluated.
pub fn load_artifact(
    dir: &Path,
    index: usize,
    total: usize,
    protocol: CorpusFingerprint,
    cell: &Cell,
) -> Option<EvalOutcome> {
    let json = std::fs::read_to_string(artifact_path(dir, index)).ok()?;
    let artifact: CellArtifact = serde_json::from_str(&json).ok()?;
    let (bench, layer, defense) = cell;
    let matches = artifact.index == index
        && artifact.total == total
        && artifact.protocol == protocol
        && artifact.outcome.benchmark == bench.name()
        && artifact.outcome.split_layer == layer.0
        && artifact.outcome.defense.kind == defense.kind
        && artifact.outcome.defense.strength.to_bits() == defense.strength.to_bits();
    matches.then_some(artifact.outcome)
}

/// Reassembles the full matrix from `dir`, in cell order.
///
/// # Errors
///
/// Lists every missing or mismatched cell, so an operator can see which
/// shard still has to run (or re-run) before the merge can succeed.
pub fn merge_artifacts(
    dir: &Path,
    cells: &[Cell],
    protocol: CorpusFingerprint,
) -> Result<Vec<EvalOutcome>, String> {
    let mut outcomes = Vec::with_capacity(cells.len());
    let mut missing = Vec::new();
    for (index, cell) in cells.iter().enumerate() {
        match load_artifact(dir, index, cells.len(), protocol, cell) {
            Some(outcome) => outcomes.push(outcome),
            None => missing.push(index),
        }
    }
    if missing.is_empty() {
        Ok(outcomes)
    } else {
        Err(format!(
            "{} of {} cells missing or mismatched in {}: {:?}",
            missing.len(),
            cells.len(),
            dir.display(),
            missing
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsplit_defense::eval::AttackScores;
    use deepsplit_defense::{DefenseConfig, DefenseKind, DefenseStats};
    use deepsplit_layout::geom::Layer;
    use deepsplit_netlist::benchmarks::Benchmark;

    fn outcome(bench: &str, layer: u8, kind: DefenseKind, strength: f64) -> EvalOutcome {
        EvalOutcome {
            benchmark: bench.to_string(),
            split_layer: layer,
            defense: DefenseStats {
                kind,
                strength,
                swapped_cells: 0,
                lifted_nets: 0,
                decoy_vias: 0,
                detoured_nets: 0,
                equalized_cells: 0,
                camo_cells: 0,
                base_wirelength: 100,
                defended_wirelength: 110,
                base_vias: 10,
                defended_vias: 12,
                base_beol_wirelength: 50,
                defended_beol_wirelength: 60,
            },
            scores: AttackScores {
                sink_fragments: 4,
                source_fragments: 5,
                dl_ccr: 0.25,
                flow_ccr: Some(0.5),
                proximity_ccr: 0.4,
                chance_ccr: 0.2,
                recovery: 0.75,
            },
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deepsplit-artifacts-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn artifact_round_trip_and_validation() {
        let dir = tempdir("roundtrip");
        let protocol = CorpusFingerprint([7, 8]);
        let cell: Cell = (
            Benchmark::C432,
            Layer(3),
            DefenseConfig {
                kind: DefenseKind::Lift,
                strength: 1.0,
                seed: 11,
            },
        );
        let out = outcome("c432", 3, DefenseKind::Lift, 1.0);
        write_artifact(&dir, 1, 2, protocol, &out, None).expect("write artifact");
        assert_eq!(
            load_artifact(&dir, 1, 2, protocol, &cell),
            Some(out.clone())
        );
        // Timings are telemetry, not identity: a timed artifact resumes
        // exactly like an untimed one.
        let timed = CellTimings {
            corpus_ms: 12.5,
            train_ms: 800.0,
            attack_ms: 40.0,
            publish_ms: 0.0,
        };
        write_artifact(&dir, 1, 2, protocol, &out, Some(timed)).expect("write timed artifact");
        assert_eq!(load_artifact(&dir, 1, 2, protocol, &cell), Some(out));
        // Wrong matrix size, protocol, layer or defense → not resumable.
        assert_eq!(load_artifact(&dir, 1, 3, protocol, &cell), None);
        assert_eq!(
            load_artifact(&dir, 1, 2, CorpusFingerprint([7, 9]), &cell),
            None,
            "a changed evaluation protocol must invalidate the artifact"
        );
        let other = (Benchmark::C432, Layer(1), cell.2.clone());
        assert_eq!(load_artifact(&dir, 1, 2, protocol, &other), None);
        let weaker = (
            Benchmark::C432,
            Layer(3),
            DefenseConfig {
                strength: 0.5,
                ..cell.2.clone()
            },
        );
        assert_eq!(load_artifact(&dir, 1, 2, protocol, &weaker), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn protocol_fingerprint_tracks_eval_and_seed_but_not_threads() {
        let config = SweepConfig::fast();
        let base = protocol_fingerprint(&config);

        let mut images = config.clone();
        images.eval.attack.use_images = true;
        assert_ne!(base, protocol_fingerprint(&images));

        let mut seed = config.clone();
        seed.defense_seed += 1;
        assert_ne!(base, protocol_fingerprint(&seed));

        // Results are thread-invariant, so the budget must not orphan
        // artifacts.
        let mut threads = config.clone();
        threads.eval.attack.threads = 7;
        threads.threads = 3;
        assert_eq!(base, protocol_fingerprint(&threads));
    }

    #[test]
    fn merge_reports_missing_cells() {
        let dir = tempdir("merge");
        let cells: Vec<Cell> = vec![
            (Benchmark::C432, Layer(3), DefenseConfig::none()),
            (
                Benchmark::C432,
                Layer(3),
                DefenseConfig {
                    kind: DefenseKind::Lift,
                    strength: 1.0,
                    seed: 11,
                },
            ),
        ];
        let protocol = CorpusFingerprint([3, 4]);
        let baseline = outcome("c432", 3, DefenseKind::None, 0.0);
        write_artifact(&dir, 0, 2, protocol, &baseline, None).expect("write artifact");
        let err = merge_artifacts(&dir, &cells, protocol).unwrap_err();
        assert!(err.contains("[1]"), "must name the missing cell: {err}");
        let lifted = outcome("c432", 3, DefenseKind::Lift, 1.0);
        write_artifact(&dir, 1, 2, protocol, &lifted, None).expect("write artifact");
        assert_eq!(
            merge_artifacts(&dir, &cells, protocol).unwrap(),
            vec![baseline, lifted]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
